//! The campaign coordinator: job queue, shard leasing, fault recovery,
//! and the deterministic merge that makes a distributed run byte-identical
//! to a single-machine campaign.
//!
//! # Lease state machine
//!
//! Every shard is in exactly one state:
//!
//! ```text
//!            claim                    valid /result
//! Pending ----------> Leased -----------------------> Done
//!    ^                  |
//!    |   lease expiry / corrupt result under lease    |
//!    +------------------+    (failures < max)         |
//!                       |                             |
//!                       +--> Poisoned  (failures >= max_shard_attempts)
//! ```
//!
//! Reassignment backs off deterministically through the *same*
//! [`RetryPolicy::jittered_backoff`] the supervisor uses, keyed by
//! `(job, shard)`. A shard whose owners keep dying is poisoned after
//! `max_shard_attempts` failures: its suite slots are synthesized into
//! quarantine records (cause classified as [`FailureCause::Panic`] with
//! the shard's failure history as payload) and the job completes DEGRADED
//! instead of hanging — exactly the supervisor's contract, lifted one
//! level up.
//!
//! # Determinism
//!
//! Shard results are per-slot verdicts computed by
//! `Campaign::run_slots`, which reproduces the single-machine per-slot
//! seeds exactly. The merge is therefore pure bookkeeping: envelopes are
//! keyed by suite index in a `BTreeMap`, duplicates are idempotent
//! (first result wins — any two valid results for a shard are identical
//! by construction), and the assembled report and journal equal
//! `Campaign::new(spec.to_config()).run()`'s output byte for byte.

use super::http;
use super::json::{parse, Value};
use super::observe::{render_job_chrome, render_job_trace, LifecycleRecord, WireTraceRecord};
use super::protocol::{parse_body, JobSpec, ShardAssignment, SlotEnvelope};
use crate::campaign::shard_ranges;
use crate::journal::{render_footer_line, render_header_line, render_quarantine_line};
use crate::supervisor::{AttemptFailure, FailureCause, QuarantineRecord, RetryPolicy};
use crate::telemetry::{Ids, Phase, Telemetry, TelemetryConfig};
use crate::JournalFooter;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Coordinator configuration.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Listen address; port 0 picks a free port (read it back from
    /// [`Server::addr`]).
    pub addr: String,
    /// Directory for the journal-backed job queue. Every submitted job and
    /// completed shard is appended to `job-NNNNNN.jsonl` here, and a
    /// restarted coordinator replays the files: done shards stay done,
    /// leases (which died with the process) revert to pending.
    pub state_dir: Option<PathBuf>,
    /// Lease duration granted per claim; heartbeats extend it. Every wait
    /// in the system is bounded by this.
    pub lease: Duration,
    /// Suite slots per shard (1 = one test per lease, the finest grain).
    pub shard_tests: u64,
    /// Distinct owners a shard may kill before it is poisoned and its
    /// slots quarantined.
    pub max_shard_attempts: u32,
    /// Backoff policy for shard *reassignment* (not worker-side retries):
    /// failure `k` delays the next claim by
    /// [`RetryPolicy::jittered_backoff`]`(k + 1, job ⊕ shard)`.
    pub retry: RetryPolicy,
    /// Telemetry handle; scrape-enabled by default so `/metrics` serves a
    /// live registry.
    pub telemetry: Telemetry,
    /// Socket timeout applied to every accepted connection.
    pub request_timeout: Duration,
    /// Longest a `GET /events` connection stays open before the server
    /// closes it (bounding handler threads); clients reconnect with
    /// `since=<last seq>` and lose nothing.
    pub stream_window: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".to_owned(),
            state_dir: None,
            lease: Duration::from_secs(30),
            shard_tests: 1,
            max_shard_attempts: 3,
            retry: RetryPolicy::with_retries(2).with_backoff(Duration::from_millis(25)),
            telemetry: Telemetry::new(TelemetryConfig {
                scrape: true,
                ..TelemetryConfig::default()
            }),
            request_timeout: Duration::from_secs(10),
            stream_window: Duration::from_secs(10),
        }
    }
}

/// A running coordinator. Dropping (or [`Server::shutdown`]) stops the
/// accept loop and the lease sweeper; in-flight connection handlers are
/// bounded by their socket timeouts.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServiceState>,
    accept: Option<std::thread::JoinHandle<()>>,
    sweeper: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// The bound address, e.g. `127.0.0.1:41873`.
    pub fn addr(&self) -> String {
        self.addr.to_string()
    }

    /// The coordinator's telemetry handle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.state.options.telemetry
    }

    /// Stops the server and joins its threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.state.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = http::connect(&self.addr.to_string(), Duration::from_millis(250));
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.sweeper.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Starts a coordinator. If [`ServeOptions::state_dir`] is set, previously
/// journaled jobs are recovered first (completed shards kept, leases
/// reverted to pending).
///
/// # Errors
///
/// Binding the listener or reading the state directory fails.
pub fn serve(options: ServeOptions) -> std::io::Result<Server> {
    let listener = TcpListener::bind(&options.addr)?;
    let addr = listener.local_addr()?;
    let mut jobs = Jobs::default();
    if let Some(dir) = &options.state_dir {
        std::fs::create_dir_all(dir)?;
        recover_jobs(dir, &mut jobs, &options)?;
    }
    let state = Arc::new(ServiceState {
        options,
        jobs: Mutex::new(jobs),
        shutdown: AtomicBool::new(false),
        lease_counter: AtomicU64::new(0),
    });
    // Pre-register the fleet-health counters so `/metrics` always renders
    // them (a zero is an answerable "none", absence is just a gap) —
    // including the PR-9 recovery counters, which otherwise only surface
    // when corruption is actually skipped.
    for counter in [
        "lease_expirations",
        "shard_failures",
        "shards_reassigned",
        "shards_poisoned",
        "journal_skipped_lines",
        "state_skipped_lines",
        "trace_records",
        "trace_truncated",
        "event_streams",
    ] {
        state.count(counter, 0);
    }
    let accept_state = Arc::clone(&state);
    let accept = std::thread::spawn(move || accept_loop(&listener, &accept_state));
    let sweep_state = Arc::clone(&state);
    let sweeper = std::thread::spawn(move || sweep_loop(&sweep_state));
    Ok(Server {
        addr,
        state,
        accept: Some(accept),
        sweeper: Some(sweeper),
    })
}

#[derive(Debug)]
struct ServiceState {
    options: ServeOptions,
    jobs: Mutex<Jobs>,
    shutdown: AtomicBool,
    lease_counter: AtomicU64,
}

#[derive(Debug, Default)]
struct Jobs {
    next_id: u64,
    jobs: BTreeMap<u64, Job>,
}

#[derive(Debug)]
struct Job {
    id: u64,
    spec: JobSpec,
    shards: Vec<Shard>,
    /// Accepted slot results, keyed by suite index — the deterministic
    /// merge order.
    entries: BTreeMap<u64, SlotEnvelope>,
    complete: bool,
    degraded: bool,
    report: Option<String>,
    /// `Ok(bytes)` once assembled; `Err(reason)` when a journal cannot be
    /// produced (serde unavailable somewhere along the path).
    journal: Option<Result<String, String>>,
    /// Shipped trace records from accepted results (traced jobs only),
    /// tagged with the shard that delivered them.
    trace: Vec<WireTraceRecord>,
    /// Coordinator-side shard lifecycle records (traced jobs only).
    lifecycle: Vec<LifecycleRecord>,
    /// The job's progress event log, served by `GET /events`. Append-only
    /// with strictly increasing `seq` (resuming across restarts via the
    /// state journal), so `since=<seq>` reconnects never duplicate.
    events: Vec<StoredEvent>,
    next_event_seq: u64,
}

#[derive(Debug)]
struct StoredEvent {
    seq: u64,
    /// True for the final `complete` event — closes open streams.
    terminal: bool,
    /// The rendered JSON line, stored verbatim so replays and reconnects
    /// serve byte-identical events.
    line: String,
}

#[derive(Debug)]
struct Shard {
    start: u64,
    end: u64,
    state: ShardState,
    failures: Vec<ShardFailure>,
}

#[derive(Clone, Debug)]
struct ShardFailure {
    worker: String,
    cause: String,
}

#[derive(Debug)]
enum ShardState {
    Pending {
        not_before: Option<Instant>,
    },
    Leased {
        lease: u64,
        expires: Instant,
        /// When the lease was granted (not moved by heartbeats) — the
        /// `status` view's lease age.
        granted: Instant,
        /// Claiming worker's name — failure attribution when the lease
        /// expires (the holder crashed, stalled, or disconnected).
        holder: String,
    },
    Done,
    Poisoned,
}

impl Job {
    fn new(id: u64, spec: JobSpec, plan: &[(u64, u64)]) -> Job {
        Job {
            id,
            spec,
            shards: plan
                .iter()
                .map(|&(start, end)| Shard {
                    start,
                    end,
                    state: ShardState::Pending { not_before: None },
                    failures: Vec::new(),
                })
                .collect(),
            entries: BTreeMap::new(),
            complete: false,
            degraded: false,
            report: None,
            journal: None,
            trace: Vec::new(),
            lifecycle: Vec::new(),
            events: Vec::new(),
            next_event_seq: 1,
        }
    }
}

/// The deterministic shard plan for a suite of `tests` slots.
fn plan_shards(tests: u64, shard_tests: u64) -> Vec<(u64, u64)> {
    let per_shard = shard_tests.max(1);
    let shard_count = usize::try_from(tests.max(1).div_ceil(per_shard)).unwrap_or(usize::MAX);
    shard_ranges(tests, shard_count)
        .into_iter()
        .map(|r| (r.start, r.end))
        .collect()
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServiceState>) {
    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        let timeout = state.options.request_timeout;
        let _ = stream.set_read_timeout(Some(timeout));
        let _ = stream.set_write_timeout(Some(timeout));
        let state = Arc::clone(state);
        std::thread::spawn(move || {
            match http::read_request(&mut stream) {
                Ok(request) => {
                    let (path, query) = split_query(&request.path);
                    if request.method == "GET" && path == "/events" {
                        // The one streaming endpoint: it writes its own
                        // (unframed) response and holds the connection.
                        stream_events(&state, &mut stream, query);
                        return;
                    }
                    let (status, content_type, body) = dispatch(&state, &request);
                    let _ = http::write_response(&mut stream, status, content_type, &body);
                }
                Err(_) => {
                    // Partial writes and hangups cost one bounded read.
                    let _ = http::write_response(
                        &mut stream,
                        400,
                        "application/json",
                        &error_body("malformed request"),
                    );
                }
            }
        });
    }
}

fn sweep_loop(state: &Arc<ServiceState>) {
    let tick = (state.options.lease / 4)
        .min(Duration::from_millis(250))
        .max(Duration::from_millis(5));
    while !state.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(tick);
        expire_leases(state);
    }
}

/// Fails every shard whose lease has expired — the recovery path for
/// crashed, stalled, and disconnected workers alike.
fn expire_leases(state: &ServiceState) {
    let now = Instant::now();
    let mut jobs = state.jobs.lock().expect("jobs lock");
    let mut expired: Vec<(u64, usize, String)> = Vec::new();
    for job in jobs.jobs.values() {
        for (index, shard) in job.shards.iter().enumerate() {
            if let ShardState::Leased {
                expires, holder, ..
            } = &shard.state
            {
                if *expires <= now {
                    expired.push((job.id, index, holder.clone()));
                }
            }
        }
    }
    for (job_id, shard_index, holder) in expired {
        state.count("lease_expirations", 1);
        fail_shard(
            state,
            &mut jobs,
            job_id,
            shard_index,
            &holder,
            "lease expired",
        );
    }
}

impl ServiceState {
    fn count(&self, event: &'static str, n: u64) {
        let mut scope = self.options.telemetry.scope(Ids::none());
        scope.count(event, n);
    }
}

/// Appends one progress event to the job's log (and the state journal,
/// when persistence is on). The rendered line is stored verbatim so every
/// `/events` delivery — live, reconnect, or after a restart — serves
/// byte-identical JSON for a given seq.
fn emit_event(state: &ServiceState, job: &mut Job, name: &str, fields: Vec<(&str, Value)>) {
    let seq = job.next_event_seq;
    job.next_event_seq += 1;
    let mut all = vec![
        ("seq", Value::u64(seq)),
        ("job", Value::u64(job.id)),
        ("event", Value::str(name)),
    ];
    all.extend(fields);
    let line = Value::obj(all).render();
    if let Some(dir) = &state.options.state_dir {
        if let Err(e) = persist_event(dir, job.id, seq, name, &line) {
            crate::telemetry::logger::warn(format_args!(
                "warning: could not journal event for job {}: {e}",
                job.id
            ));
        }
    }
    job.events.push(StoredEvent {
        seq,
        terminal: name == "complete",
        line,
    });
}

/// Records a coordinator-side shard lifecycle transition for a traced
/// job (no-op otherwise — the inertness contract). `seq` is the shard's
/// causal ordinal: transitions are serialized under the jobs lock, so it
/// is deterministic for a given failure history.
fn record_lifecycle(
    state: &ServiceState,
    job: &mut Job,
    name: &'static str,
    shard_index: usize,
    attempt: u64,
    cause: Option<String>,
) {
    if !job.spec.trace {
        return;
    }
    let shard = &job.shards[shard_index];
    let record = LifecycleRecord {
        name,
        shard: shard_index as u64,
        slot_start: shard.start,
        slot_end: shard.end,
        attempt,
        seq: job
            .lifecycle
            .iter()
            .filter(|l| l.shard == shard_index as u64)
            .count() as u64,
        cause,
    };
    if let Some(dir) = &state.options.state_dir {
        if let Err(e) = append_line(&job_file(dir, job.id), &record.encode(job.id).render()) {
            crate::telemetry::logger::warn(format_args!(
                "warning: could not journal lifecycle record for job {}: {e}",
                job.id
            ));
        }
    }
    job.lifecycle.push(record);
}

/// Shard-state and verdict tallies shared by `GET /jobs/{id}` and the
/// progress events.
struct ProgressCounts {
    pending: u64,
    leased: u64,
    done: u64,
    poisoned: u64,
    validated: u64,
    quarantined: u64,
    failing: u64,
    violations: u64,
}

fn progress_counts(job: &Job) -> ProgressCounts {
    let mut counts = ProgressCounts {
        pending: 0,
        leased: 0,
        done: 0,
        poisoned: 0,
        validated: 0,
        quarantined: 0,
        failing: 0,
        violations: 0,
    };
    for shard in &job.shards {
        match shard.state {
            ShardState::Pending { .. } => counts.pending += 1,
            ShardState::Leased { .. } => counts.leased += 1,
            ShardState::Done => counts.done += 1,
            ShardState::Poisoned => counts.poisoned += 1,
        }
    }
    for entry in job.entries.values() {
        if entry.quarantined {
            counts.quarantined += 1;
        } else {
            counts.validated += 1;
            if !entry.clean {
                counts.failing += 1;
            }
            counts.violations += entry.violations;
        }
    }
    counts
}

impl ProgressCounts {
    /// The tally fields, in the stable order both the progress endpoint
    /// and the event stream use.
    fn fields(&self) -> Vec<(&'static str, Value)> {
        vec![
            ("pending", Value::u64(self.pending)),
            ("leased", Value::u64(self.leased)),
            ("done", Value::u64(self.done)),
            ("poisoned", Value::u64(self.poisoned)),
            ("validated", Value::u64(self.validated)),
            ("quarantined", Value::u64(self.quarantined)),
            ("failing", Value::u64(self.failing)),
            ("violations", Value::u64(self.violations)),
        ]
    }
}

fn error_body(message: &str) -> String {
    Value::obj(vec![("error", Value::str(message))]).render()
}

type Reply = (u16, &'static str, String);

fn json_reply(status: u16, value: &Value) -> Reply {
    (status, "application/json", value.render())
}

fn error_reply(status: u16, message: &str) -> Reply {
    (status, "application/json", error_body(message))
}

/// Splits `path?query` into its halves (`query` empty when absent).
fn split_query(raw: &str) -> (&str, &str) {
    raw.split_once('?').unwrap_or((raw, ""))
}

fn dispatch(state: &ServiceState, request: &http::Request) -> Reply {
    state.count("requests", 1);
    let (path, _query) = split_query(&request.path);
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => json_reply(200, &Value::obj(vec![("ok", Value::Bool(true))])),
        ("GET", ["metrics"]) => match state.options.telemetry.render_metrics() {
            Some(text) => (200, "text/plain; version=0.0.4", text),
            None => error_reply(503, "telemetry disabled on this coordinator"),
        },
        ("POST", ["jobs"]) => submit_job(state, &request.body),
        ("GET", ["jobs"]) => list_jobs(state),
        ("GET", ["jobs", id]) => with_job_id(id, |id| job_progress(state, id)),
        ("GET", ["jobs", id, "report"]) => with_job_id(id, |id| job_report(state, id)),
        ("GET", ["jobs", id, "journal"]) => with_job_id(id, |id| job_journal(state, id)),
        ("GET", ["jobs", id, "trace"]) => with_job_id(id, |id| job_trace(state, id)),
        ("GET", ["jobs", id, "chrome-trace"]) => with_job_id(id, |id| job_chrome(state, id)),
        ("POST", ["claim"]) => claim_shard(state, &request.body),
        ("POST", ["heartbeat"]) => heartbeat(state, &request.body),
        ("POST", ["result"]) => submit_result(state, &request.body),
        ("GET", _) => error_reply(404, "no such endpoint"),
        _ => error_reply(405, "method not allowed"),
    }
}

fn with_job_id(raw: &str, f: impl FnOnce(u64) -> Reply) -> Reply {
    match raw.parse::<u64>() {
        Ok(id) => f(id),
        Err(_) => error_reply(400, "job id must be an integer"),
    }
}

fn submit_job(state: &ServiceState, body: &str) -> Reply {
    let spec = match parse_body("POST /jobs", body).and_then(|v| JobSpec::decode(&v)) {
        Ok(spec) => spec,
        Err(e) => return error_reply(400, &e),
    };
    let plan = plan_shards(spec.tests, state.options.shard_tests);
    let mut jobs = state.jobs.lock().expect("jobs lock");
    let id = jobs.next_id;
    jobs.next_id += 1;
    if let Some(dir) = &state.options.state_dir {
        if let Err(e) = persist_job(dir, id, &spec, &plan) {
            return error_reply(503, &format!("could not journal job: {e}"));
        }
    }
    jobs.jobs.insert(id, Job::new(id, spec, &plan));
    let job = jobs.jobs.get_mut(&id).expect("just inserted");
    let (tests, shards) = (job.spec.tests, job.shards.len() as u64);
    emit_event(
        state,
        job,
        "submitted",
        vec![("tests", Value::u64(tests)), ("shards", Value::u64(shards))],
    );
    state.count("jobs_submitted", 1);
    json_reply(200, &Value::obj(vec![("job", Value::u64(id))]))
}

fn list_jobs(state: &ServiceState) -> Reply {
    let jobs = state.jobs.lock().expect("jobs lock");
    let ids: Vec<Value> = jobs.jobs.keys().map(|&id| Value::u64(id)).collect();
    json_reply(200, &Value::obj(vec![("jobs", Value::Arr(ids))]))
}

fn job_progress(state: &ServiceState, id: u64) -> Reply {
    let jobs = state.jobs.lock().expect("jobs lock");
    let Some(job) = jobs.jobs.get(&id) else {
        return error_reply(404, "no such job");
    };
    let counts = progress_counts(job);
    // One glyph per shard, in shard order — the `status` view's map.
    let shard_map: String = job
        .shards
        .iter()
        .map(|s| match s.state {
            ShardState::Pending { .. } => '.',
            ShardState::Leased { .. } => '~',
            ShardState::Done => '#',
            ShardState::Poisoned => '!',
        })
        .collect();
    let retries: u64 = job.shards.iter().map(|s| s.failures.len() as u64).sum();
    let now = Instant::now();
    let lease_age_ms = job
        .shards
        .iter()
        .filter_map(|s| match &s.state {
            ShardState::Leased { granted, .. } => {
                Some(now.saturating_duration_since(*granted).as_millis() as u64)
            }
            _ => None,
        })
        .max()
        .unwrap_or(0);
    let mut fields = vec![
        ("job", Value::u64(id)),
        ("tests", Value::u64(job.spec.tests)),
        ("shards", Value::u64(job.shards.len() as u64)),
    ];
    fields.extend(counts.fields());
    fields.push(("complete", Value::Bool(job.complete)));
    fields.push(("degraded", Value::Bool(job.degraded)));
    fields.push(("shard_map", Value::str(shard_map)));
    fields.push(("retries", Value::u64(retries)));
    fields.push(("lease_age_ms", Value::u64(lease_age_ms)));
    json_reply(200, &Value::obj(fields))
}

fn job_report(state: &ServiceState, id: u64) -> Reply {
    let jobs = state.jobs.lock().expect("jobs lock");
    let Some(job) = jobs.jobs.get(&id) else {
        return error_reply(404, "no such job");
    };
    match &job.report {
        Some(text) => (200, "text/plain", text.clone()),
        None => error_reply(409, "job is not complete yet"),
    }
}

fn job_journal(state: &ServiceState, id: u64) -> Reply {
    let jobs = state.jobs.lock().expect("jobs lock");
    let Some(job) = jobs.jobs.get(&id) else {
        return error_reply(404, "no such job");
    };
    match &job.journal {
        Some(Ok(text)) => (200, "text/plain", text.clone()),
        Some(Err(reason)) => error_reply(503, reason),
        None => error_reply(409, "job is not complete yet"),
    }
}

fn job_trace(state: &ServiceState, id: u64) -> Reply {
    let jobs = state.jobs.lock().expect("jobs lock");
    let Some(job) = jobs.jobs.get(&id) else {
        return error_reply(404, "no such job");
    };
    if !job.spec.trace {
        return error_reply(409, "job was not submitted with tracing");
    }
    if !job.complete {
        return error_reply(409, "job is not complete yet");
    }
    let text = render_job_trace(
        job.id,
        job.spec.tests,
        job.shards.len() as u64,
        job.trace.clone(),
        job.lifecycle.clone(),
    );
    (200, "application/x-ndjson", text)
}

fn job_chrome(state: &ServiceState, id: u64) -> Reply {
    let jobs = state.jobs.lock().expect("jobs lock");
    let Some(job) = jobs.jobs.get(&id) else {
        return error_reply(404, "no such job");
    };
    if !job.spec.trace {
        return error_reply(409, "job was not submitted with tracing");
    }
    if !job.complete {
        return error_reply(409, "job is not complete yet");
    }
    (
        200,
        "application/json",
        render_job_chrome(job.trace.clone(), &job.lifecycle),
    )
}

/// The `GET /events?job=<id>&since=<seq>` streaming handler. Writes an
/// unframed ndjson body, flushing each event as it lands, until the job's
/// terminal event has been delivered, the server shuts down, or the
/// stream window closes (clients reconnect with `since=<last seq>`).
fn stream_events(state: &ServiceState, stream: &mut TcpStream, query: &str) {
    let mut job_id: Option<u64> = None;
    let mut since = 0u64;
    for pair in query.split('&') {
        match pair.split_once('=') {
            Some(("job", v)) => job_id = v.parse().ok(),
            Some(("since", v)) => since = v.parse().unwrap_or(0),
            _ => {}
        }
    }
    let Some(job_id) = job_id else {
        let _ = http::write_response(
            stream,
            400,
            "application/json",
            &error_body("events requires job=<id>"),
        );
        return;
    };
    if !state
        .jobs
        .lock()
        .expect("jobs lock")
        .jobs
        .contains_key(&job_id)
    {
        let _ = http::write_response(stream, 404, "application/json", &error_body("no such job"));
        return;
    }
    if http::write_stream_header(stream, "application/x-ndjson").is_err() {
        return;
    }
    state.count("event_streams", 1);
    let deadline = Instant::now() + state.options.stream_window;
    let mut last = since;
    loop {
        let mut batch: Vec<String> = Vec::new();
        let mut terminal = false;
        {
            let jobs = state.jobs.lock().expect("jobs lock");
            if let Some(job) = jobs.jobs.get(&job_id) {
                for event in &job.events {
                    if event.seq <= last {
                        continue;
                    }
                    last = event.seq;
                    terminal |= event.terminal;
                    batch.push(event.line.clone());
                }
            }
        }
        for line in &batch {
            if http::write_stream_line(stream, line).is_err() {
                return;
            }
        }
        if terminal || state.shutdown.load(Ordering::SeqCst) || Instant::now() >= deadline {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn claim_shard(state: &ServiceState, body: &str) -> Reply {
    let worker = match parse_body("POST /claim", body)
        .and_then(|v| v.req_str("worker").map(ToOwned::to_owned))
    {
        Ok(worker) => worker,
        Err(e) => return error_reply(400, &e),
    };
    let now = Instant::now();
    let mut jobs = state.jobs.lock().expect("jobs lock");
    let mut queue_empty = true;
    let mut soonest_backoff: Option<Duration> = None;
    let mut claim: Option<(u64, usize)> = None;
    'scan: for job in jobs.jobs.values() {
        for (shard_index, shard) in job.shards.iter().enumerate() {
            match &shard.state {
                ShardState::Pending { not_before } => {
                    queue_empty = false;
                    if let Some(at) = not_before {
                        if *at > now {
                            let wait = *at - now;
                            soonest_backoff = Some(soonest_backoff.map_or(wait, |s| s.min(wait)));
                            continue;
                        }
                    }
                    claim = Some((job.id, shard_index));
                    break 'scan;
                }
                ShardState::Leased { .. } => queue_empty = false,
                ShardState::Done | ShardState::Poisoned => {}
            }
        }
    }
    if let Some((job_id, shard_index)) = claim {
        let job = jobs.jobs.get_mut(&job_id).expect("claimed job exists");
        let lease = state.lease_counter.fetch_add(1, Ordering::SeqCst) + 1;
        let attempt = job.shards[shard_index].failures.len() as u64 + 1;
        let shard = &mut job.shards[shard_index];
        shard.state = ShardState::Leased {
            lease,
            expires: now + state.options.lease,
            granted: now,
            holder: worker.clone(),
        };
        let (start, end) = (shard.start, shard.end);
        let assignment = ShardAssignment {
            job: job_id,
            shard: shard_index as u64,
            start,
            end,
            lease,
            lease_ms: state.options.lease.as_millis() as u64,
            spec: job.spec.clone(),
        };
        record_lifecycle(state, job, "shard_claimed", shard_index, attempt, None);
        emit_event(
            state,
            job,
            "claimed",
            vec![
                ("shard", Value::u64(shard_index as u64)),
                ("attempt", Value::u64(attempt)),
                ("worker", Value::str(worker.clone())),
            ],
        );
        state.count("shards_claimed", 1);
        crate::telemetry::logger::debug(format_args!(
            "coordinator: worker {worker} leased job {job_id} shard {shard_index} \
             (slots {start}..{end}, lease {lease})"
        ));
        return json_reply(200, &assignment.encode());
    }
    // Nothing claimable right now: back off for the soonest reassignment,
    // or a lease quarter when only leased shards remain in flight.
    let retry_after = soonest_backoff
        .unwrap_or_else(|| (state.options.lease / 4).min(Duration::from_millis(100)))
        .max(Duration::from_millis(1));
    json_reply(
        200,
        &Value::obj(vec![
            ("idle", Value::Bool(true)),
            ("retry_after_ms", Value::u64(retry_after.as_millis() as u64)),
            ("queue_empty", Value::Bool(queue_empty)),
        ]),
    )
}

fn heartbeat(state: &ServiceState, body: &str) -> Reply {
    let parsed = parse_body("POST /heartbeat", body)
        .and_then(|v| Ok((v.req_u64("job")?, v.req_u64("shard")?, v.req_u64("lease")?)));
    let (job_id, shard_index, lease_id) = match parsed {
        Ok(t) => t,
        Err(e) => return error_reply(400, &e),
    };
    let mut jobs = state.jobs.lock().expect("jobs lock");
    let Some(shard) = jobs.jobs.get_mut(&job_id).and_then(|j| {
        j.shards
            .get_mut(usize::try_from(shard_index).unwrap_or(usize::MAX))
    }) else {
        return error_reply(404, "no such job or shard");
    };
    match &mut shard.state {
        ShardState::Leased { lease, expires, .. } if *lease == lease_id => {
            *expires = Instant::now() + state.options.lease;
            state.count("heartbeats", 1);
            json_reply(200, &Value::obj(vec![("ok", Value::Bool(true))]))
        }
        // A stale heartbeat tells the worker its lease is gone: stop and
        // discard rather than racing the replacement.
        _ => error_reply(409, "lease is no longer held"),
    }
}

fn submit_result(state: &ServiceState, body: &str) -> Reply {
    let value = match parse_body("POST /result", body) {
        Ok(v) => v,
        Err(e) => return error_reply(400, &e),
    };
    let ids = (|| -> Result<(u64, u64, u64, String), String> {
        Ok((
            value.req_u64("job")?,
            value.req_u64("shard")?,
            value.req_u64("lease")?,
            value.req_str("worker")?.to_owned(),
        ))
    })();
    let (job_id, shard_index, lease_id, worker) = match ids {
        Ok(t) => t,
        Err(e) => return error_reply(400, &e),
    };
    let mut jobs = state.jobs.lock().expect("jobs lock");
    let Some(job) = jobs.jobs.get_mut(&job_id) else {
        return error_reply(404, "no such job");
    };
    let Some(shard) = job
        .shards
        .get(usize::try_from(shard_index).unwrap_or(usize::MAX))
    else {
        return error_reply(404, "no such shard");
    };
    let (start, end) = (shard.start, shard.end);
    match shard.state {
        // Results are deterministic, so a second delivery carries the
        // same bytes the first did: acknowledge idempotently.
        ShardState::Done => {
            state.count("duplicate_results", 1);
            return json_reply(200, &Value::obj(vec![("duplicate", Value::Bool(true))]));
        }
        ShardState::Poisoned => {
            return error_reply(409, "shard is poisoned");
        }
        ShardState::Pending { .. } | ShardState::Leased { .. } => {}
    }
    match decode_result(&value, start, end, shard_index) {
        Ok((entries, trace)) => {
            let attempt = job.shards[shard_index as usize].failures.len() as u64 + 1;
            let shard = &mut job.shards[shard_index as usize];
            shard.state = ShardState::Done;
            job.entries
                .extend(entries.iter().map(|e| (e.index, e.clone())));
            if !trace.is_empty() {
                state.count("trace_records", trace.len() as u64);
                // Shipped span timings feed the coordinator's per-phase
                // histograms — `/metrics` sees the fleet's phase latency.
                let mut scope = state.options.telemetry.scope(Ids::none());
                for record in &trace {
                    if record.span {
                        if let Some(phase) = Phase::from_name(&record.label) {
                            scope.sample_us(phase, record.dur_us);
                        }
                    }
                }
                drop(scope);
                job.trace.extend(trace.iter().cloned());
            }
            if value
                .get("trace_truncated")
                .and_then(Value::as_bool)
                .unwrap_or(false)
            {
                state.count("trace_truncated", 1);
            }
            if let Some(dir) = &state.options.state_dir {
                if let Err(e) = persist_done(dir, job_id, shard_index, &entries, &trace) {
                    crate::telemetry::logger::warn(format_args!(
                        "warning: could not journal shard result for job {job_id}: {e}"
                    ));
                }
            }
            state.count("shard_results", 1);
            record_lifecycle(
                state,
                job,
                "shard_done",
                shard_index as usize,
                attempt,
                None,
            );
            let counts = progress_counts(job);
            let mut fields = vec![
                ("shard", Value::u64(shard_index)),
                ("attempt", Value::u64(attempt)),
            ];
            fields.extend(counts.fields());
            emit_event(state, job, "shard_done", fields);
            check_completion(state, job);
            json_reply(200, &Value::obj(vec![("accepted", Value::Bool(true))]))
        }
        Err(e) => {
            // A corrupt body counts against the shard only when it was
            // submitted under the current lease — stray garbage from an
            // already-evicted worker cannot sabotage a healthy lease.
            let held = matches!(
                job.shards[shard_index as usize].state,
                ShardState::Leased { lease, .. } if lease == lease_id
            );
            state.count("corrupt_results", 1);
            if held {
                let cause = format!("corrupt shard result: {e}");
                fail_shard(
                    state,
                    &mut jobs,
                    job_id,
                    shard_index as usize,
                    &worker,
                    &cause,
                );
            }
            error_reply(400, &format!("corrupt shard result: {e}"))
        }
    }
}

/// Decodes a full `/result` body: the validated entry list plus the
/// optional shipped trace array, tagged with the delivering shard.
/// An absent trace is fine (untraced job, or a worker predating trace
/// shipping); a malformed one makes the whole result corrupt — trace
/// integrity gets the same treatment as verdict integrity.
fn decode_result(
    value: &Value,
    start: u64,
    end: u64,
    shard: u64,
) -> Result<(Vec<SlotEnvelope>, Vec<WireTraceRecord>), String> {
    let entries = decode_entries(value, start, end)?;
    let trace = match value.get("trace") {
        None => Vec::new(),
        Some(Value::Arr(items)) => {
            let mut records = Vec::with_capacity(items.len());
            for item in items {
                let mut record = WireTraceRecord::decode(item)?;
                record.shard = shard;
                records.push(record);
            }
            records
        }
        Some(_) => return Err("trace is not an array".to_owned()),
    };
    Ok((entries, trace))
}

/// Decodes and validates a result's entry list: every suite index in
/// `start..end`, each exactly once.
fn decode_entries(value: &Value, start: u64, end: u64) -> Result<Vec<SlotEnvelope>, String> {
    let raw = value.req_arr("entries")?;
    let mut entries = Vec::with_capacity(raw.len());
    for item in raw {
        entries.push(SlotEnvelope::decode(item)?);
    }
    let expected = usize::try_from(end - start).unwrap_or(usize::MAX);
    if entries.len() != expected {
        return Err(format!(
            "expected {expected} entries for slots {start}..{end}, got {}",
            entries.len()
        ));
    }
    let mut seen: Vec<bool> = vec![false; expected];
    for entry in &entries {
        let offset = entry
            .index
            .checked_sub(start)
            .and_then(|o| usize::try_from(o).ok())
            .filter(|&o| o < expected)
            .ok_or_else(|| format!("entry index {} outside {start}..{end}", entry.index))?;
        if seen[offset] {
            return Err(format!("duplicate entry for suite index {}", entry.index));
        }
        seen[offset] = true;
    }
    Ok(entries)
}

/// Records a shard failure and either schedules deterministic
/// reassignment (with the shared jittered backoff) or poisons the shard.
fn fail_shard(
    state: &ServiceState,
    jobs: &mut Jobs,
    job_id: u64,
    shard_index: usize,
    worker: &str,
    cause: &str,
) {
    let Some(job) = jobs.jobs.get_mut(&job_id) else {
        return;
    };
    let Some(shard) = job.shards.get_mut(shard_index) else {
        return;
    };
    let worker = if worker.is_empty() {
        "<unknown>"
    } else {
        worker
    };
    shard.failures.push(ShardFailure {
        worker: worker.to_owned(),
        cause: cause.to_owned(),
    });
    state.count("shard_failures", 1);
    let failures = u32::try_from(shard.failures.len()).unwrap_or(u32::MAX);
    let attempt = u64::from(failures);
    if failures >= state.options.max_shard_attempts {
        shard.state = ShardState::Poisoned;
        state.count("shards_poisoned", 1);
        crate::telemetry::logger::warn(format_args!(
            "coordinator: job {job_id} shard {shard_index} poisoned after {failures} \
             failure(s); its slots will be quarantined"
        ));
        if let Some(dir) = &state.options.state_dir {
            let failures = job.shards[shard_index].failures.clone();
            if let Err(e) = persist_poisoned(dir, job_id, shard_index as u64, &failures) {
                crate::telemetry::logger::warn(format_args!(
                    "warning: could not journal poisoned shard for job {job_id}: {e}"
                ));
            }
        }
        record_lifecycle(
            state,
            job,
            "shard_poisoned",
            shard_index,
            attempt,
            Some(cause.to_owned()),
        );
        emit_event(
            state,
            job,
            "shard_poisoned",
            vec![
                ("shard", Value::u64(shard_index as u64)),
                ("attempt", Value::u64(attempt)),
                ("cause", Value::str(cause)),
            ],
        );
        check_completion(state, jobs.jobs.get_mut(&job_id).expect("job exists"));
    } else {
        // Deterministic reassignment backoff, shared with the supervisor:
        // failure k delays the next claim like retry attempt k+1, keyed by
        // (job, shard) so concurrent recoveries spread out.
        let key = (job_id << 32) ^ shard_index as u64;
        let backoff = state.options.retry.jittered_backoff(failures + 1, key);
        shard.state = ShardState::Pending {
            not_before: (!backoff.is_zero()).then(|| Instant::now() + backoff),
        };
        state.count("shards_reassigned", 1);
        record_lifecycle(
            state,
            job,
            "shard_failed",
            shard_index,
            attempt,
            Some(cause.to_owned()),
        );
        emit_event(
            state,
            job,
            "shard_failed",
            vec![
                ("shard", Value::u64(shard_index as u64)),
                ("attempt", Value::u64(attempt)),
                ("cause", Value::str(cause)),
                ("backoff_ms", Value::u64(backoff.as_millis() as u64)),
            ],
        );
        crate::telemetry::logger::debug(format_args!(
            "coordinator: job {job_id} shard {shard_index} failed ({cause}, worker \
             {worker}); reassigning after {} ms",
            backoff.as_millis()
        ));
    }
}

/// If every shard is terminal (done or poisoned), assembles the job's
/// final report and journal — the deterministic merge.
fn check_completion(state: &ServiceState, job: &mut Job) {
    if job.complete
        || !job
            .shards
            .iter()
            .all(|s| matches!(s.state, ShardState::Done | ShardState::Poisoned))
    {
        return;
    }
    // Synthesize quarantine records for every slot of every poisoned
    // shard: the shard's failure history, classified as worker panics —
    // the same shape the supervisor produces for an in-process crash.
    for shard in &job.shards {
        if !matches!(shard.state, ShardState::Poisoned) {
            continue;
        }
        for index in shard.start..shard.end {
            let record = QuarantineRecord {
                index,
                attempts: shard
                    .failures
                    .iter()
                    .enumerate()
                    .map(|(i, f)| AttemptFailure {
                        attempt: u32::try_from(i + 1).unwrap_or(u32::MAX),
                        seed_offset: 0,
                        cause: FailureCause::Panic {
                            payload: format!("shard owner {}: {}", f.worker, f.cause),
                        },
                    })
                    .collect(),
            };
            job.entries.insert(
                index,
                SlotEnvelope {
                    index,
                    quarantined: true,
                    clean: false,
                    unique_signatures: 0,
                    violations: 0,
                    text: record.to_string(),
                    journal_line: render_quarantine_line(&record)
                        .map_err(|e| e.to_string())
                        .ok(),
                },
            );
        }
    }
    job.complete = true;
    job.degraded = job.entries.values().any(|e| e.quarantined);
    job.report = Some(assemble_report(&job.spec, &job.entries));
    job.journal = Some(assemble_journal(&job.spec, &job.entries));
    state.count("jobs_completed", 1);
    if job.degraded {
        state.count("jobs_degraded", 1);
    }
    // Exactly one terminal event per job: recovery replays the persisted
    // one, so the re-run completion check must not emit a second.
    if !job.events.iter().any(|e| e.terminal) {
        let counts = progress_counts(job);
        let mut fields = counts.fields();
        fields.push(("degraded", Value::Bool(job.degraded)));
        emit_event(state, job, "complete", fields);
    }
    crate::telemetry::logger::info(format_args!(
        "coordinator: job {} complete{}",
        job.id,
        if job.degraded { " (DEGRADED)" } else { "" }
    ));
}

/// Renders the merged [`crate::ConfigReport`] text exactly as the
/// single-machine campaign's `Display` does: header, summary line,
/// optional DEGRADED marker, per-test sections in suite order, then
/// quarantined slots. Service jobs never configure lint, resume, spill
/// budgets, or profiling, so those conditional lines never apply.
fn assemble_report(spec: &JobSpec, entries: &BTreeMap<u64, SlotEnvelope>) -> String {
    use std::fmt::Write as _;
    let validated: Vec<&SlotEnvelope> = entries.values().filter(|e| !e.quarantined).collect();
    let quarantined = entries.len() - validated.len();
    let mean = if validated.is_empty() {
        0.0
    } else {
        validated
            .iter()
            .map(|e| e.unique_signatures as f64)
            .sum::<f64>()
            / validated.len() as f64
    };
    let failing = validated.iter().filter(|e| !e.clean).count();
    let violations: u64 = validated.iter().map(|e| e.violations).sum();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== {} ({} tests) ===",
        spec.test.name(),
        validated.len()
    );
    let _ = writeln!(
        out,
        "mean unique signatures {mean:.1}; {failing} failing tests; {violations} violating signatures"
    );
    if quarantined > 0 {
        let _ = writeln!(
            out,
            "DEGRADED RUN: {quarantined} test(s) quarantined; verdicts below are partial"
        );
    }
    for entry in &validated {
        let _ = writeln!(out, "--- test {} ---", entry.index);
        out.push_str(&entry.text);
    }
    for entry in entries.values().filter(|e| e.quarantined) {
        out.push_str("QUARANTINED: ");
        out.push_str(&entry.text);
    }
    out
}

/// Reassembles the canonical journal byte stream from per-slot lines:
/// header, records in suite order, footer — the same layout
/// [`crate::CampaignJournal::finalize`] writes (footers differ in
/// host-resource statistics and are stripped by cross-run comparisons).
fn assemble_journal(
    spec: &JobSpec,
    entries: &BTreeMap<u64, SlotEnvelope>,
) -> Result<String, String> {
    let config = spec.to_config();
    let header = render_header_line(&config)
        .map_err(|e| format!("journal unavailable: header failed to render: {e}"))?;
    let mut out = header;
    out.push('\n');
    let mut tests = 0u64;
    let mut quarantined = 0u64;
    for entry in entries.values() {
        if entry.quarantined {
            quarantined += 1;
        } else {
            tests += 1;
        }
        let line = entry.journal_line.as_ref().ok_or_else(|| {
            format!(
                "journal unavailable: slot {} shipped no journal line \
                 (serde unavailable on its worker)",
                entry.index
            )
        })?;
        out.push_str(line);
        out.push('\n');
    }
    let footer = JournalFooter {
        tests,
        quarantined,
        ..JournalFooter::default()
    };
    let line = render_footer_line(&footer)
        .map_err(|e| format!("journal unavailable: footer failed to render: {e}"))?;
    out.push_str(&line);
    out.push('\n');
    Ok(out)
}

// --- journal-backed queue persistence -----------------------------------

fn job_file(dir: &std::path::Path, id: u64) -> PathBuf {
    dir.join(format!("job-{id:06}.jsonl"))
}

fn append_line(path: &std::path::Path, line: &str) -> std::io::Result<()> {
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(file, "{}", crate::durable::frame_line(line))?;
    file.flush()
}

fn persist_job(
    dir: &std::path::Path,
    id: u64,
    spec: &JobSpec,
    plan: &[(u64, u64)],
) -> std::io::Result<()> {
    let shards: Vec<Value> = plan
        .iter()
        .map(|&(s, e)| Value::Arr(vec![Value::u64(s), Value::u64(e)]))
        .collect();
    let record = Value::obj(vec![
        ("kind", Value::str("job")),
        ("id", Value::u64(id)),
        ("spec", spec.encode()),
        ("shards", Value::Arr(shards)),
    ]);
    append_line(&job_file(dir, id), &record.render())
}

fn persist_done(
    dir: &std::path::Path,
    id: u64,
    shard: u64,
    entries: &[SlotEnvelope],
    trace: &[WireTraceRecord],
) -> std::io::Result<()> {
    let mut fields = vec![
        ("kind", Value::str("done")),
        ("shard", Value::u64(shard)),
        (
            "entries",
            Value::Arr(entries.iter().map(SlotEnvelope::encode).collect()),
        ),
    ];
    if !trace.is_empty() {
        fields.push((
            "trace",
            Value::Arr(trace.iter().map(WireTraceRecord::encode).collect()),
        ));
    }
    append_line(&job_file(dir, id), &Value::obj(fields).render())
}

fn persist_event(
    dir: &std::path::Path,
    id: u64,
    seq: u64,
    name: &str,
    line: &str,
) -> std::io::Result<()> {
    let record = Value::obj(vec![
        ("kind", Value::str("event")),
        ("seq", Value::u64(seq)),
        ("name", Value::str(name)),
        ("line", Value::str(line)),
    ]);
    append_line(&job_file(dir, id), &record.render())
}

fn persist_poisoned(
    dir: &std::path::Path,
    id: u64,
    shard: u64,
    failures: &[ShardFailure],
) -> std::io::Result<()> {
    let record = Value::obj(vec![
        ("kind", Value::str("poisoned")),
        ("shard", Value::u64(shard)),
        (
            "failures",
            Value::Arr(
                failures
                    .iter()
                    .map(|f| {
                        Value::obj(vec![
                            ("worker", Value::str(f.worker.clone())),
                            ("cause", Value::str(f.cause.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    append_line(&job_file(dir, id), &record.render())
}

/// Replays `job-*.jsonl` files into the queue. Leases died with the old
/// process, so every non-terminal shard restarts pending; corrupt or
/// truncated lines are skipped with a warning (their shards re-run),
/// mirroring the campaign journal's forgiving replay.
fn recover_jobs(
    dir: &std::path::Path,
    jobs: &mut Jobs,
    options: &ServeOptions,
) -> std::io::Result<()> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("job-") && n.ends_with(".jsonl"))
        })
        .collect();
    paths.sort();
    for path in paths {
        let text = std::fs::read_to_string(&path)?;
        let mut job: Option<Job> = None;
        let mut skipped = 0u64;
        for line in text.lines() {
            // The CRC frame is checked before any parse: a torn or bit-
            // flipped line fails cheaply here regardless of whether the
            // damage lands in JSON structure or a value.
            let Ok(payload) = crate::durable::unframe_line(line) else {
                skipped += 1;
                continue;
            };
            match parse(payload) {
                Ok(value) => {
                    if !replay_record(&value, &mut job) {
                        skipped += 1;
                    }
                }
                Err(_) => skipped += 1,
            }
        }
        if skipped > 0 {
            crate::telemetry::logger::warn(format_args!(
                "warning: skipped {skipped} corrupt line(s) recovering {}; \
                 affected shards re-run (audit with `mtracecheck fsck`)",
                path.display()
            ));
            options
                .telemetry
                .scope(crate::telemetry::Ids::none())
                .count("state_skipped_lines", skipped);
        }
        let Some(mut job) = job else { continue };
        // Re-run the completion check so a job that finished before the
        // restart re-assembles its report and journal.
        let placeholder = ServiceState {
            options: options.clone(),
            jobs: Mutex::new(Jobs::default()),
            shutdown: AtomicBool::new(false),
            lease_counter: AtomicU64::new(0),
        };
        check_completion(&placeholder, &mut job);
        jobs.next_id = jobs.next_id.max(job.id + 1);
        jobs.jobs.insert(job.id, job);
    }
    Ok(())
}

/// Applies one recovered record; returns `false` for records that cannot
/// be applied (treated as corrupt).
fn replay_record(value: &Value, job: &mut Option<Job>) -> bool {
    match value.get("kind").and_then(Value::as_str) {
        Some("job") => {
            let (Ok(id), Some(spec_value), Ok(shards_raw)) = (
                value.req_u64("id"),
                value.get("spec"),
                value.req_arr("shards"),
            ) else {
                return false;
            };
            let Ok(spec) = JobSpec::decode(spec_value) else {
                return false;
            };
            let mut plan = Vec::with_capacity(shards_raw.len());
            for item in shards_raw {
                let Some([s, e]) = item.as_arr().and_then(|a| <&[Value; 2]>::try_from(a).ok())
                else {
                    return false;
                };
                let (Some(s), Some(e)) = (s.as_u64(), e.as_u64()) else {
                    return false;
                };
                plan.push((s, e));
            }
            *job = Some(Job::new(id, spec, &plan));
            true
        }
        Some("done") => {
            let Some(job) = job.as_mut() else {
                return false;
            };
            let (Ok(shard_index), Ok(raw)) = (value.req_u64("shard"), value.req_arr("entries"))
            else {
                return false;
            };
            let Some(shard) = job
                .shards
                .get_mut(usize::try_from(shard_index).unwrap_or(usize::MAX))
            else {
                return false;
            };
            let mut entries = Vec::with_capacity(raw.len());
            for item in raw {
                let Ok(entry) = SlotEnvelope::decode(item) else {
                    return false;
                };
                entries.push(entry);
            }
            let mut trace = Vec::new();
            if let Some(Value::Arr(items)) = value.get("trace") {
                for item in items {
                    let Ok(mut record) = WireTraceRecord::decode(item) else {
                        return false;
                    };
                    record.shard = shard_index;
                    trace.push(record);
                }
            }
            shard.state = ShardState::Done;
            job.entries
                .extend(entries.into_iter().map(|e| (e.index, e)));
            job.trace.extend(trace);
            true
        }
        Some("event") => {
            let Some(job) = job.as_mut() else {
                return false;
            };
            let (Ok(seq), Ok(name), Ok(line)) = (
                value.req_u64("seq"),
                value.req_str("name"),
                value.req_str("line"),
            ) else {
                return false;
            };
            job.events.push(StoredEvent {
                seq,
                terminal: name == "complete",
                line: line.to_owned(),
            });
            job.next_event_seq = job.next_event_seq.max(seq + 1);
            true
        }
        Some("lifecycle") => {
            let Some(job) = job.as_mut() else {
                return false;
            };
            let Ok(record) = LifecycleRecord::decode(value) else {
                return false;
            };
            job.lifecycle.push(record);
            true
        }
        Some("poisoned") => {
            let Some(job) = job.as_mut() else {
                return false;
            };
            let (Ok(shard_index), Ok(raw)) = (value.req_u64("shard"), value.req_arr("failures"))
            else {
                return false;
            };
            let Some(shard) = job
                .shards
                .get_mut(usize::try_from(shard_index).unwrap_or(usize::MAX))
            else {
                return false;
            };
            let mut failures = Vec::with_capacity(raw.len());
            for item in raw {
                let (Ok(worker), Ok(cause)) = (item.req_str("worker"), item.req_str("cause"))
                else {
                    return false;
                };
                failures.push(ShardFailure {
                    worker: worker.to_owned(),
                    cause: cause.to_owned(),
                });
            }
            shard.state = ShardState::Poisoned;
            shard.failures = failures;
            true
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_plans_cover_the_suite_exactly_once() {
        for (tests, per_shard) in [(1u64, 1u64), (7, 1), (10, 3), (4, 100), (12, 4)] {
            let plan = plan_shards(tests, per_shard);
            assert_eq!(plan.first().map(|&(s, _)| s), Some(0));
            assert_eq!(plan.last().map(|&(_, e)| e), Some(tests));
            for pair in plan.windows(2) {
                assert_eq!(pair[0].1, pair[1].0, "contiguous shards");
                assert!(pair[0].0 < pair[0].1, "non-empty shards");
            }
        }
    }

    #[test]
    fn entry_validation_rejects_gaps_duplicates_and_strays() {
        let envelope = |index: u64| SlotEnvelope {
            index,
            quarantined: false,
            clean: true,
            unique_signatures: 1,
            violations: 0,
            text: String::new(),
            journal_line: None,
        };
        let body = |indices: &[u64]| {
            Value::obj(vec![(
                "entries",
                Value::Arr(indices.iter().map(|&i| envelope(i).encode()).collect()),
            )])
        };
        assert!(decode_entries(&body(&[2, 3]), 2, 4).is_ok());
        assert!(decode_entries(&body(&[3, 2]), 2, 4).is_ok(), "order-free");
        assert!(decode_entries(&body(&[2]), 2, 4).is_err(), "gap");
        assert!(decode_entries(&body(&[2, 2]), 2, 4).is_err(), "duplicate");
        assert!(decode_entries(&body(&[2, 5]), 2, 4).is_err(), "stray");
    }

    #[test]
    fn degraded_reports_match_the_display_shape() {
        let spec = JobSpec::new(crate::TestConfig::new(mtc_isa::IsaKind::X86, 2, 10, 8), 16);
        let mut entries = BTreeMap::new();
        entries.insert(
            0,
            SlotEnvelope {
                index: 0,
                quarantined: false,
                clean: true,
                unique_signatures: 5,
                violations: 0,
                text: "iterations 16\n".to_owned(),
                journal_line: None,
            },
        );
        entries.insert(
            1,
            SlotEnvelope {
                index: 1,
                quarantined: true,
                clean: false,
                unique_signatures: 0,
                violations: 0,
                text: "test 1 quarantined after 1 attempt(s):\n  boom\n".to_owned(),
                journal_line: None,
            },
        );
        let report = assemble_report(&spec, &entries);
        assert!(report.contains("(1 tests) ==="));
        assert!(report.contains("mean unique signatures 5.0; 0 failing tests"));
        assert!(report.contains("DEGRADED RUN: 1 test(s) quarantined; verdicts below are partial"));
        assert!(report.contains("--- test 0 ---\niterations 16\n"));
        assert!(report.contains("QUARANTINED: test 1 quarantined"));
        // A missing journal line keeps the report but not the journal.
        assert!(assemble_journal(&spec, &entries).is_err());
    }
}
