//! A deliberately small HTTP/1.1 subset over `std::net`, shared by the
//! coordinator server and the worker/submit clients.
//!
//! One request per connection (`Connection: close`), bodies framed by
//! `Content-Length`, and **every** read and write sits under a socket
//! timeout — a stalled or half-dead peer costs one bounded wait, never a
//! hung service. That timeout discipline is part of the recovery
//! contract: no fault schedule may hang a job.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Largest accepted request or response body. Shard results for big
/// suites are a few MB of report text; 64 MB is far above any legitimate
/// message and small enough to starve no host.
pub(crate) const MAX_BODY_BYTES: u64 = 64 << 20;

/// A parsed request line + body.
#[derive(Debug)]
pub(crate) struct Request {
    /// Upper-case method (`GET`, `POST`).
    pub method: String,
    /// Path with no query parsing — the protocol does not use queries.
    pub path: String,
    /// Decoded body (empty for bodyless requests).
    pub body: String,
}

/// A client-side response: status code and body.
#[derive(Debug)]
pub(crate) struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: String,
}

/// Reads one request from an accepted connection. The caller is expected
/// to have applied read/write timeouts to the stream already.
pub(crate) fn read_request(stream: &mut TcpStream) -> std::io::Result<Request> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_owned();
    let path = parts.next().unwrap_or_default().to_owned();
    if method.is_empty() || path.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "malformed request line",
        ));
    }
    let content_length = read_headers(&mut reader)?;
    let body = read_body(&mut reader, content_length)?;
    Ok(Request { method, path, body })
}

/// Reads header lines until the blank separator, returning the declared
/// `Content-Length` (0 when absent).
fn read_headers<R: BufRead>(reader: &mut R) -> std::io::Result<u64> {
    let mut content_length = 0u64;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed inside headers",
            ));
        }
        let line = line.trim_end();
        if line.is_empty() {
            return Ok(content_length);
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, "bad content-length")
                })?;
            }
        }
    }
}

/// Reads exactly `content_length` body bytes (bounded by
/// [`MAX_BODY_BYTES`]) and decodes them as UTF-8.
fn read_body<R: BufRead>(reader: &mut R, content_length: u64) -> std::io::Result<String> {
    if content_length > MAX_BODY_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "body exceeds size limit",
        ));
    }
    let mut body = vec![0u8; content_length as usize];
    reader.read_exact(&mut body)?;
    String::from_utf8(body)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "body is not UTF-8"))
}

/// Writes one response and flushes it. `content_type` is
/// `application/json` for protocol endpoints and `text/plain` for report,
/// journal, and metrics bodies.
pub(crate) fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let header = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\n\
         content-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Starts a streaming response: status line + headers with **no**
/// `Content-Length`, so the body is whatever the server writes until it
/// closes the connection. The one deliberate departure from the
/// request/response framing above — used by `GET /events`, whose ndjson
/// body grows as the job progresses. Clients read lines until EOF.
pub(crate) fn write_stream_header(
    stream: &mut TcpStream,
    content_type: &str,
) -> std::io::Result<()> {
    let header =
        format!("HTTP/1.1 200 OK\r\ncontent-type: {content_type}\r\nconnection: close\r\n\r\n");
    stream.write_all(header.as_bytes())?;
    stream.flush()
}

/// Writes one body line of a streaming response and flushes it, so the
/// client observes the event immediately.
pub(crate) fn write_stream_line(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

/// What a streaming GET produced: a line reader for a 200 with unframed
/// body, or an ordinary framed reply for anything else.
pub(crate) enum StreamOpen {
    /// 200: read ndjson lines until EOF (or a read timeout, which a
    /// streaming client treats as "reconnect with `since=<last seq>`").
    Stream(BufReader<TcpStream>),
    /// Any non-200 status, with its framed body.
    Reply(Response),
}

/// Opens a streaming GET against `addr`. Timeouts apply to the connect,
/// the request write, and *each* body read — a silent server costs one
/// bounded wait per read, never a hang.
pub(crate) fn open_stream(
    addr: &str,
    path: &str,
    timeout: Duration,
) -> std::io::Result<StreamOpen> {
    let mut stream = connect(addr, timeout)?;
    let header = format!(
        "GET {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: 0\r\nconnection: close\r\n\r\n"
    );
    stream.write_all(header.as_bytes())?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed status line")
        })?;
    let content_length = read_headers(&mut reader)?;
    if status == 200 {
        return Ok(StreamOpen::Stream(reader));
    }
    let body = read_body(&mut reader, content_length)?;
    Ok(StreamOpen::Reply(Response { status, body }))
}

/// Performs one client request against `addr` with `timeout` applied to
/// connect, reads, and writes.
pub(crate) fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> std::io::Result<Response> {
    let mut stream = connect(addr, timeout)?;
    let header = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-type: application/json\r\n\
         content-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    read_response(&mut stream)
}

/// Opens a connection to `addr` with every socket timeout applied.
pub(crate) fn connect(addr: &str, timeout: Duration) -> std::io::Result<TcpStream> {
    let resolved = addr.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "address resolves to nothing",
        )
    })?;
    let stream = TcpStream::connect_timeout(&resolved, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    Ok(stream)
}

/// Reads a response from a stream `request` (or a fault-injecting caller)
/// already wrote to.
pub(crate) fn read_response(stream: &mut TcpStream) -> std::io::Result<Response> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed status line")
        })?;
    let content_length = read_headers(&mut reader)?;
    let body = read_body(&mut reader, content_length)?;
    Ok(Response { status, body })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn request_roundtrips_over_a_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            stream
                .set_read_timeout(Some(Duration::from_secs(5)))
                .expect("timeout");
            let req = read_request(&mut stream).expect("read request");
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/echo");
            write_response(&mut stream, 200, "application/json", &req.body)
                .expect("write response");
        });
        let body = "{\"text\":\"héllo\\nworld\"}";
        let resp = request(&addr, "POST", "/echo", body, Duration::from_secs(5)).expect("request");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, body);
        server.join().expect("server thread");
    }

    #[test]
    fn oversized_bodies_are_rejected() {
        let text = format!("content-length: {}\r\n\r\n", u64::MAX);
        let mut reader = std::io::BufReader::new(std::io::Cursor::new(text.into_bytes()));
        let len = read_headers(&mut reader).expect("headers parse");
        assert!(read_body(&mut reader, len).is_err());
    }

    #[test]
    fn truncated_requests_error_not_hang() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = std::thread::spawn(move || {
            let mut stream =
                TcpStream::connect_timeout(&addr, Duration::from_secs(5)).expect("connect");
            // Declare a body, send half of it, and hang up — the partial
            // write every dropped worker produces.
            stream
                .write_all(b"POST /result HTTP/1.1\r\ncontent-length: 100\r\n\r\nhalf")
                .expect("partial write");
        });
        let (mut stream, _) = listener.accept().expect("accept");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        client.join().expect("client thread");
        assert!(read_request(&mut stream).is_err());
    }
}
