//! Wire-protocol bodies for the campaign service: the job specification a
//! client submits, the shard assignment a worker claims, and the per-slot
//! result envelope a worker ships back.
//!
//! Everything here encodes to JSON with the hand-rolled codec in
//! [`super::json`], so the protocol works with or without a functioning
//! `serde_json`. The one serde-dependent artifact — the canonical journal
//! line for a slot — is carried as an *opaque string* rendered on the
//! worker ([`crate::journal`] helpers) and reassembled byte-for-byte by
//! the coordinator; when serde cannot serialize (offline devstubs), the
//! envelope simply omits it and the job's journal degrades, exactly like
//! a single-machine run whose journal writes fail.

use super::json::{parse, Value};
use crate::supervisor::RetryPolicy;
use crate::{CampaignConfig, TestConfig};
use mtc_isa::{IsaKind, Mcm};
use std::time::Duration;

/// A submitted campaign, restricted to the deterministic knobs the
/// service distributes (the full `CampaignConfig` carries host-local
/// resources — spill directories, cache paths — that make no sense to
/// ship to remote workers).
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Test-generation parameters (ISA, MCM, threads, ops, addresses,
    /// fractions, seed) — the campaign's logical identity.
    pub test: TestConfig,
    /// Loop iterations per test.
    pub iterations: u64,
    /// Suite size.
    pub tests: u64,
    /// Iteration shards per test on each worker (part of the logical
    /// shard plan, so it must match the single-machine run being
    /// reproduced; 1 = the paper-faithful warm loop).
    pub workers: u64,
    /// Run the conventional checker for comparison.
    pub compare_conventional: bool,
    /// Use split-window collective checking.
    pub split_windows: bool,
    /// Check collective chunks in parallel.
    pub chunked_check: bool,
    /// Supervisor attempts per test (1 = fail-fast into quarantine).
    pub max_attempts: u32,
    /// Base supervisor backoff between attempts, milliseconds.
    pub backoff_ms: u64,
    /// Per-attempt wall-clock budget, milliseconds (`None` = unbounded;
    /// `Some(0)` deterministically quarantines every test).
    pub time_budget_ms: Option<u64>,
    /// Ship per-shard telemetry traces with results, for the
    /// coordinator's merged job trace. Inert for the verdict: reports and
    /// journals are byte-identical either way.
    pub trace: bool,
}

impl JobSpec {
    /// A spec with the campaign defaults for `test` and `iterations`.
    pub fn new(test: TestConfig, iterations: u64) -> JobSpec {
        JobSpec {
            test,
            iterations,
            tests: 10,
            workers: 1,
            compare_conventional: false,
            split_windows: false,
            chunked_check: false,
            max_attempts: 1,
            backoff_ms: 0,
            time_budget_ms: None,
            trace: false,
        }
    }

    /// Returns the spec with trace shipping enabled.
    #[must_use]
    pub fn with_trace(mut self) -> JobSpec {
        self.trace = true;
        self
    }

    /// Returns the spec with `tests` suite slots.
    #[must_use]
    pub fn with_tests(mut self, tests: u64) -> JobSpec {
        self.tests = tests;
        self
    }

    /// Returns the spec with a supervisor retry policy.
    #[must_use]
    pub fn with_retry(mut self, policy: RetryPolicy) -> JobSpec {
        self.max_attempts = policy.max_attempts;
        self.backoff_ms = policy.backoff.as_millis() as u64;
        self.time_budget_ms = policy.time_budget.map(|d| d.as_millis() as u64);
        self
    }

    /// The single-machine campaign this spec describes. Distributed
    /// equivalence is *defined* against this configuration: a coordinator
    /// merge must equal `Campaign::new(spec.to_config()).run()`.
    pub fn to_config(&self) -> CampaignConfig {
        let mut config =
            CampaignConfig::new(self.test.clone(), self.iterations).with_tests(self.tests);
        config.workers = (self.workers.max(1)) as usize;
        if self.compare_conventional {
            config = config.with_conventional_comparison();
        }
        if self.split_windows {
            config = config.with_split_windows();
        }
        if self.chunked_check {
            config = config.with_chunked_checking();
        }
        config.with_retry(RetryPolicy {
            max_attempts: self.max_attempts.max(1),
            backoff: Duration::from_millis(self.backoff_ms),
            time_budget: self.time_budget_ms.map(Duration::from_millis),
        })
    }

    /// Encodes the spec as a protocol JSON value.
    pub(crate) fn encode(&self) -> Value {
        let t = &self.test;
        Value::obj(vec![
            ("isa", Value::str(isa_name(t.isa))),
            ("mcm", Value::str(mcm_name(t.mcm))),
            ("threads", Value::u64(u64::from(t.threads))),
            ("ops", Value::u64(u64::from(t.ops_per_thread))),
            ("addrs", Value::u64(u64::from(t.num_addrs))),
            ("load_fraction", Value::Float(t.load_fraction)),
            ("fence_fraction", Value::Float(t.fence_fraction)),
            ("words_per_line", Value::u64(u64::from(t.words_per_line))),
            ("seed", Value::u64(t.seed)),
            ("iterations", Value::u64(self.iterations)),
            ("tests", Value::u64(self.tests)),
            ("workers", Value::u64(self.workers)),
            ("conventional", Value::Bool(self.compare_conventional)),
            ("split_windows", Value::Bool(self.split_windows)),
            ("chunked_check", Value::Bool(self.chunked_check)),
            ("max_attempts", Value::u64(u64::from(self.max_attempts))),
            ("backoff_ms", Value::u64(self.backoff_ms)),
            (
                "time_budget_ms",
                self.time_budget_ms.map_or(Value::Null, Value::u64),
            ),
            ("trace", Value::Bool(self.trace)),
        ])
    }

    /// Decodes a spec from a protocol JSON value.
    pub(crate) fn decode(v: &Value) -> Result<JobSpec, String> {
        let isa: IsaKind = v
            .req_str("isa")?
            .parse()
            .map_err(|e: mtc_isa::IsaKindParseError| e.to_string())?;
        let mcm = match v.req_str("mcm")? {
            "sc" => Mcm::Sc,
            "tso" => Mcm::Tso,
            "weak" => Mcm::Weak,
            other => return Err(format!("unknown mcm `{other}`")),
        };
        let small = |key: &str| -> Result<u32, String> {
            u32::try_from(v.req_u64(key)?).map_err(|_| format!("field `{key}` out of range"))
        };
        let mut test = TestConfig::new(isa, small("threads")?, small("ops")?, small("addrs")?)
            .with_seed(v.req_u64("seed")?)
            .with_words_per_line(small("words_per_line")?);
        test.mcm = mcm;
        test.load_fraction = v
            .get("load_fraction")
            .and_then(Value::as_f64)
            .ok_or("missing or non-numeric field `load_fraction`")?;
        test.fence_fraction = v
            .get("fence_fraction")
            .and_then(Value::as_f64)
            .ok_or("missing or non-numeric field `fence_fraction`")?;
        let time_budget_ms = match v.get("time_budget_ms") {
            None | Some(Value::Null) => None,
            Some(other) => Some(
                other
                    .as_u64()
                    .ok_or("field `time_budget_ms` must be an integer or null")?,
            ),
        };
        Ok(JobSpec {
            test,
            iterations: v.req_u64("iterations")?,
            tests: v.req_u64("tests")?,
            workers: v.req_u64("workers")?.max(1),
            compare_conventional: bool_field(v, "conventional")?,
            split_windows: bool_field(v, "split_windows")?,
            chunked_check: bool_field(v, "chunked_check")?,
            max_attempts: u32::try_from(v.req_u64("max_attempts")?.max(1))
                .map_err(|_| "field `max_attempts` out of range".to_owned())?,
            backoff_ms: v.req_u64("backoff_ms")?,
            time_budget_ms,
            // Absent on specs persisted before trace shipping existed.
            trace: v.get("trace").and_then(Value::as_bool).unwrap_or(false),
        })
    }
}

fn bool_field(v: &Value, key: &str) -> Result<bool, String> {
    v.get(key)
        .and_then(Value::as_bool)
        .ok_or_else(|| format!("missing or non-boolean field `{key}`"))
}

fn isa_name(isa: IsaKind) -> &'static str {
    match isa {
        IsaKind::X86 => "x86",
        IsaKind::Arm => "arm",
    }
}

fn mcm_name(mcm: Mcm) -> &'static str {
    match mcm {
        Mcm::Sc => "sc",
        Mcm::Tso => "tso",
        Mcm::Weak => "weak",
    }
}

/// One completed suite slot, as shipped from worker to coordinator.
///
/// Everything the coordinator's merge needs is explicit and hand-rolled:
/// the numeric summary feeds the `ConfigReport` header line, `text` is
/// the slot's `Display` rendering reused verbatim in the merged report,
/// and `journal_line` (when serde can serialize) is the slot's canonical
/// journal record, reassembled byte-for-byte into the job journal.
#[derive(Clone, Debug, PartialEq)]
pub struct SlotEnvelope {
    /// Suite index.
    pub index: u64,
    /// `false` for a validated test, `true` for a quarantined slot.
    pub quarantined: bool,
    /// `TestReport::is_clean` (always `false` for quarantined slots).
    pub clean: bool,
    /// Unique signatures observed (0 for quarantined slots).
    pub unique_signatures: u64,
    /// Violating unique signatures (0 for quarantined slots).
    pub violations: u64,
    /// The slot's `Display` rendering (`TestReport` or
    /// `QuarantineRecord`).
    pub text: String,
    /// The slot's serde-rendered journal line, when available.
    pub journal_line: Option<String>,
}

impl SlotEnvelope {
    /// Encodes the envelope as a protocol JSON value.
    pub(crate) fn encode(&self) -> Value {
        Value::obj(vec![
            ("index", Value::u64(self.index)),
            ("quarantined", Value::Bool(self.quarantined)),
            ("clean", Value::Bool(self.clean)),
            ("unique", Value::u64(self.unique_signatures)),
            ("violations", Value::u64(self.violations)),
            ("text", Value::str(self.text.clone())),
            (
                "journal_line",
                self.journal_line.clone().map_or(Value::Null, Value::Str),
            ),
        ])
    }

    /// Decodes an envelope from a protocol JSON value.
    pub(crate) fn decode(v: &Value) -> Result<SlotEnvelope, String> {
        let journal_line = match v.get("journal_line") {
            None | Some(Value::Null) => None,
            Some(other) => Some(
                other
                    .as_str()
                    .ok_or("field `journal_line` must be a string or null")?
                    .to_owned(),
            ),
        };
        Ok(SlotEnvelope {
            index: v.req_u64("index")?,
            quarantined: bool_field(v, "quarantined")?,
            clean: bool_field(v, "clean")?,
            unique_signatures: v.req_u64("unique")?,
            violations: v.req_u64("violations")?,
            text: v.req_str("text")?.to_owned(),
            journal_line,
        })
    }
}

/// A shard lease granted by `POST /claim`: the job spec travels with the
/// assignment, so workers are stateless and a coordinator restart needs
/// no worker-side resynchronization.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardAssignment {
    /// Job id.
    pub job: u64,
    /// Shard index within the job.
    pub shard: u64,
    /// First suite index of the shard.
    pub start: u64,
    /// One past the last suite index.
    pub end: u64,
    /// Lease id; heartbeats and the result must echo it.
    pub lease: u64,
    /// Lease duration granted, milliseconds.
    pub lease_ms: u64,
    /// The campaign to execute.
    pub spec: JobSpec,
}

impl ShardAssignment {
    /// Encodes the assignment as a protocol JSON value.
    pub(crate) fn encode(&self) -> Value {
        Value::obj(vec![
            ("job", Value::u64(self.job)),
            ("shard", Value::u64(self.shard)),
            ("start", Value::u64(self.start)),
            ("end", Value::u64(self.end)),
            ("lease", Value::u64(self.lease)),
            ("lease_ms", Value::u64(self.lease_ms)),
            ("spec", self.spec.encode()),
        ])
    }

    /// Decodes an assignment from a protocol JSON value.
    pub(crate) fn decode(v: &Value) -> Result<ShardAssignment, String> {
        Ok(ShardAssignment {
            job: v.req_u64("job")?,
            shard: v.req_u64("shard")?,
            start: v.req_u64("start")?,
            end: v.req_u64("end")?,
            lease: v.req_u64("lease")?,
            lease_ms: v.req_u64("lease_ms")?,
            spec: JobSpec::decode(v.get("spec").ok_or("missing field `spec`")?)?,
        })
    }
}

/// Parses a protocol JSON body, labelling errors with the endpoint.
pub(crate) fn parse_body(endpoint: &str, body: &str) -> Result<Value, String> {
    parse(body).map_err(|e| format!("{endpoint}: invalid JSON body: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> JobSpec {
        let mut test = TestConfig::new(IsaKind::X86, 4, 50, 64).with_seed(7);
        test.load_fraction = 0.25;
        JobSpec::new(test, 128)
            .with_tests(6)
            .with_retry(RetryPolicy::with_retries(2).with_backoff(Duration::from_millis(3)))
    }

    #[test]
    fn spec_decode_defaults_trace_off_for_old_payloads() {
        let spec = sample_spec().with_trace();
        let decoded = JobSpec::decode(&parse(&spec.encode().render()).unwrap()).unwrap();
        assert!(decoded.trace);
        // A pre-trace-shipping payload (no `trace` key) decodes with the
        // flag off, so persisted state files stay readable.
        let mut v = sample_spec().encode();
        if let Value::Obj(fields) = &mut v {
            fields.retain(|(k, _)| k != "trace");
        }
        assert!(!JobSpec::decode(&v).unwrap().trace);
    }

    #[test]
    fn spec_roundtrips_through_the_wire_encoding() {
        let spec = sample_spec();
        let decoded = JobSpec::decode(&parse(&spec.encode().render()).unwrap()).unwrap();
        assert_eq!(decoded, spec);
        // And the campaign it implies is the campaign it came from.
        let config = decoded.to_config();
        assert_eq!(config.test, spec.test);
        assert_eq!(config.tests, spec.tests);
        assert_eq!(config.retry.max_attempts, spec.max_attempts);
    }

    #[test]
    fn envelope_roundtrips_with_and_without_journal_line() {
        for journal_line in [None, Some("{\"Test\":{\"index\":3}}".to_owned())] {
            let env = SlotEnvelope {
                index: 3,
                quarantined: false,
                clean: true,
                unique_signatures: 17,
                violations: 0,
                text: "iterations 128  unique signatures 17\n".to_owned(),
                journal_line,
            };
            let decoded = SlotEnvelope::decode(&parse(&env.encode().render()).unwrap()).unwrap();
            assert_eq!(decoded, env);
        }
    }

    #[test]
    fn assignment_roundtrips() {
        let assignment = ShardAssignment {
            job: 1,
            shard: 2,
            start: 4,
            end: 6,
            lease: 99,
            lease_ms: 30_000,
            spec: sample_spec(),
        };
        let decoded =
            ShardAssignment::decode(&parse(&assignment.encode().render()).unwrap()).unwrap();
        assert_eq!(decoded, assignment);
    }

    #[test]
    fn corrupt_specs_are_named_errors() {
        let missing = Value::obj(vec![("isa", Value::str("arm"))]);
        assert!(JobSpec::decode(&missing).is_err());
        let bad_isa = {
            let mut v = sample_spec().encode();
            if let Value::Obj(fields) = &mut v {
                fields[0].1 = Value::str("mips");
            }
            v
        };
        assert!(JobSpec::decode(&bad_isa).unwrap_err().contains("mips"));
    }
}
