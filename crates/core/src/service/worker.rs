//! The campaign worker: claims shards, executes their suite slots with
//! the single-machine pipeline, heartbeats the lease, and ships per-slot
//! result envelopes back to the coordinator.
//!
//! The worker is stateless by design — the job spec travels inside every
//! shard assignment — so any number of workers can join, leave, or crash
//! at any point without coordination. A worker whose heartbeat is
//! rejected (its lease expired and the shard moved on) discards its
//! result instead of racing the replacement owner; a worker whose result
//! submission keeps failing gives the shard up and lets the lease expire.
//! Either way, correctness never depends on this process surviving:
//! verdicts are deterministic, so whichever owner eventually lands the
//! shard produces identical bytes.

use super::http;
use super::json::{parse, Value};
use super::protocol::{ShardAssignment, SlotEnvelope};
use super::ServiceError;
use crate::journal::{render_quarantine_line, render_test_line};
use crate::supervisor::RetryPolicy;
use crate::Campaign;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Worker configuration.
#[derive(Clone, Debug)]
pub struct WorkerOptions {
    /// Coordinator address, e.g. `127.0.0.1:7700`.
    pub coordinator: String,
    /// Worker name reported in claims and failure histories.
    pub name: String,
    /// Poll interval when the coordinator reports an idle queue.
    pub poll: Duration,
    /// Exit cleanly once the coordinator reports an *empty* queue (every
    /// job terminal) instead of polling forever — how tests and CI runs
    /// bound a worker's lifetime.
    pub exit_when_idle: bool,
    /// Stop after completing this many shards.
    pub max_shards: Option<u64>,
    /// Socket timeout for every coordinator request.
    pub timeout: Duration,
    /// Network retry policy: transient request failures (connection
    /// refused mid-restart, dropped sockets) retry under the same
    /// deterministic jittered backoff the supervisor uses.
    pub retry: RetryPolicy,
    /// Injected network faults (tests only).
    #[cfg(feature = "fault-inject")]
    pub faults: NetFaultPlan,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            coordinator: "127.0.0.1:7700".to_owned(),
            name: format!("worker-{}", std::process::id()),
            poll: Duration::from_millis(25),
            exit_when_idle: false,
            max_shards: None,
            timeout: Duration::from_secs(10),
            retry: RetryPolicy::with_retries(4).with_backoff(Duration::from_millis(10)),
            #[cfg(feature = "fault-inject")]
            faults: NetFaultPlan::default(),
        }
    }
}

/// What a worker accomplished before exiting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Shards whose results the coordinator accepted (including
    /// idempotent duplicate acknowledgements).
    pub shards_completed: u64,
    /// Shards executed but discarded because the lease was lost.
    pub shards_abandoned: u64,
}

/// Deterministic network fault plan for service tests (compiled only with
/// the `fault-inject` feature): faults are keyed by the worker's result
/// *submission ordinal* — the 0-based count of result-submission attempts
/// this process has made — so a schedule names exactly which deliveries
/// misbehave and every run of the same schedule injects identically.
#[cfg(feature = "fault-inject")]
#[derive(Clone, Debug, Default)]
pub struct NetFaultPlan {
    drop_result: Vec<u64>,
    partial_result: Vec<u64>,
    stall_result: Vec<(u64, u64)>,
    duplicate_result: Vec<u64>,
}

#[cfg(feature = "fault-inject")]
impl NetFaultPlan {
    /// Drop the connection instead of sending submission `ordinal` (the
    /// coordinator sees nothing; the worker retries).
    #[must_use]
    pub fn drop_result_at(mut self, ordinal: u64) -> Self {
        self.drop_result.push(ordinal);
        self
    }

    /// Send a truncated body for submission `ordinal` and hang up (the
    /// coordinator reads a partial write; the worker retries).
    #[must_use]
    pub fn partial_result_at(mut self, ordinal: u64) -> Self {
        self.partial_result.push(ordinal);
        self
    }

    /// Sleep `ms` milliseconds before submission `ordinal` — long stalls
    /// push the shard past its lease and exercise reassignment racing a
    /// late result.
    #[must_use]
    pub fn stall_result_at(mut self, ordinal: u64, ms: u64) -> Self {
        self.stall_result.push((ordinal, ms));
        self
    }

    /// Deliver submission `ordinal` twice (the coordinator must treat the
    /// second as an idempotent duplicate).
    #[must_use]
    pub fn duplicate_result_at(mut self, ordinal: u64) -> Self {
        self.duplicate_result.push(ordinal);
        self
    }

    fn stall_ms(&self, ordinal: u64) -> Option<u64> {
        self.stall_result
            .iter()
            .find(|&&(o, _)| o == ordinal)
            .map(|&(_, ms)| ms)
    }
}

/// Runs the worker loop until the queue empties (with
/// [`WorkerOptions::exit_when_idle`]), the shard budget is reached, or a
/// non-retryable error occurs.
///
/// # Errors
///
/// The coordinator stays unreachable past the network retry budget, or
/// sends an unparseable response.
pub fn run_worker(options: WorkerOptions) -> Result<WorkerSummary, ServiceError> {
    let mut summary = WorkerSummary::default();
    let mut submission_ordinal = 0u64;
    loop {
        if let Some(max) = options.max_shards {
            if summary.shards_completed >= max {
                return Ok(summary);
            }
        }
        let claim_body = Value::obj(vec![("worker", Value::str(options.name.clone()))]).render();
        let response = request_with_retry(&options, "POST", "/claim", &claim_body)?;
        if response.get("idle").and_then(Value::as_bool) == Some(true) {
            let queue_empty = response.get("queue_empty").and_then(Value::as_bool) == Some(true);
            if queue_empty && options.exit_when_idle {
                return Ok(summary);
            }
            let wait = response
                .get("retry_after_ms")
                .and_then(Value::as_u64)
                .map_or(options.poll, Duration::from_millis)
                .max(options.poll.min(Duration::from_millis(5)));
            std::thread::sleep(wait);
            continue;
        }
        let assignment = ShardAssignment::decode(&response)
            .map_err(|e| ServiceError::Protocol(format!("bad claim response: {e}")))?;
        let outcome = execute_shard(&options, &assignment, &mut submission_ordinal)?;
        match outcome {
            ShardOutcome::Completed => summary.shards_completed += 1,
            ShardOutcome::Abandoned => summary.shards_abandoned += 1,
        }
    }
}

enum ShardOutcome {
    Completed,
    Abandoned,
}

/// Executes one leased shard: heartbeat thread + slot execution + result
/// submission.
fn execute_shard(
    options: &WorkerOptions,
    assignment: &ShardAssignment,
    submission_ordinal: &mut u64,
) -> Result<ShardOutcome, ServiceError> {
    let abandoned = Arc::new(AtomicBool::new(false));
    let finished = Arc::new(AtomicBool::new(false));
    let heartbeat = spawn_heartbeat(
        options,
        assignment,
        Arc::clone(&abandoned),
        Arc::clone(&finished),
    );
    // Traced jobs get a capture-mode telemetry handle: the shard's spans
    // and events buffer in memory and ship with the result. Provably
    // inert for the verdict — the envelope entries are built from the
    // same slot outcomes either way.
    let telemetry = if assignment.spec.trace {
        crate::Telemetry::new(crate::TelemetryConfig {
            capture: true,
            ..crate::TelemetryConfig::default()
        })
    } else {
        crate::Telemetry::disabled()
    };
    let campaign = Campaign::new(assignment.spec.to_config()).with_telemetry(telemetry.clone());
    let slots = campaign.run_slots(assignment.start..assignment.end);
    finished.store(true, Ordering::SeqCst);
    let _ = heartbeat.join();
    if abandoned.load(Ordering::SeqCst) {
        // The lease moved on while we computed; the replacement owner's
        // identical result will land instead.
        crate::telemetry::logger::debug(format_args!(
            "worker {}: abandoning job {} shard {} (lease lost)",
            options.name, assignment.job, assignment.shard
        ));
        return Ok(ShardOutcome::Abandoned);
    }
    let entries: Vec<Value> = slots
        .iter()
        .map(|(index, outcome)| envelope_for(*index, outcome).encode())
        .collect();
    let mut fields = vec![
        ("job", Value::u64(assignment.job)),
        ("shard", Value::u64(assignment.shard)),
        ("lease", Value::u64(assignment.lease)),
        ("worker", Value::str(options.name.clone())),
        ("entries", Value::Arr(entries)),
    ];
    if assignment.spec.trace {
        let records = telemetry.take_trace_records();
        let (trace, truncated) = super::observe::encode_shipped_trace(&records);
        fields.push(("trace", trace));
        if truncated {
            fields.push(("trace_truncated", Value::Bool(true)));
        }
    }
    let body = Value::obj(fields).render();
    submit_result(options, &body, submission_ordinal)
}

/// Builds the wire envelope for one executed slot.
fn envelope_for(
    index: u64,
    outcome: &Result<crate::TestReport, crate::QuarantineRecord>,
) -> SlotEnvelope {
    match outcome {
        Ok(report) => SlotEnvelope {
            index,
            quarantined: false,
            clean: report.is_clean(),
            unique_signatures: report.unique_signatures as u64,
            violations: report.violations.len() as u64,
            text: report.to_string(),
            journal_line: render_test_line(index, report).ok(),
        },
        Err(record) => SlotEnvelope {
            index,
            quarantined: true,
            clean: false,
            unique_signatures: 0,
            violations: 0,
            text: record.to_string(),
            journal_line: render_quarantine_line(record).ok(),
        },
    }
}

/// Extends the lease every third of its duration until the shard finishes
/// or the coordinator rejects the lease (then the shard is abandoned).
fn spawn_heartbeat(
    options: &WorkerOptions,
    assignment: &ShardAssignment,
    abandoned: Arc<AtomicBool>,
    finished: Arc<AtomicBool>,
) -> std::thread::JoinHandle<()> {
    let interval = Duration::from_millis((assignment.lease_ms / 3).max(1));
    let step = interval
        .min(Duration::from_millis(10))
        .max(Duration::from_millis(1));
    let coordinator = options.coordinator.clone();
    let timeout = options.timeout;
    let body = Value::obj(vec![
        ("job", Value::u64(assignment.job)),
        ("shard", Value::u64(assignment.shard)),
        ("lease", Value::u64(assignment.lease)),
    ])
    .render();
    std::thread::spawn(move || {
        let mut since_beat = Duration::ZERO;
        while !finished.load(Ordering::SeqCst) {
            std::thread::sleep(step);
            since_beat += step;
            if since_beat < interval {
                continue;
            }
            since_beat = Duration::ZERO;
            match http::request(&coordinator, "POST", "/heartbeat", &body, timeout) {
                // 409: the lease moved on. 404: the job itself is gone
                // (a coordinator restarted without its queue journal).
                Ok(response) if response.status == 409 || response.status == 404 => {
                    abandoned.store(true, Ordering::SeqCst);
                    return;
                }
                // Transient failures are fine: the lease outlives several
                // missed beats, and the next beat retries.
                _ => {}
            }
        }
    })
}

/// Submits a result with bounded retries, applying any injected network
/// faults keyed by the submission ordinal.
fn submit_result(
    options: &WorkerOptions,
    body: &str,
    submission_ordinal: &mut u64,
) -> Result<ShardOutcome, ServiceError> {
    let attempts = options.retry.max_attempts.max(1);
    let mut last_error = String::new();
    for attempt in 1..=attempts {
        let backoff = options.retry.jittered_backoff(attempt, *submission_ordinal);
        if !backoff.is_zero() {
            std::thread::sleep(backoff);
        }
        let ordinal = *submission_ordinal;
        *submission_ordinal += 1;
        match send_result_once(options, body, ordinal) {
            Ok(true) => return Ok(ShardOutcome::Completed),
            Ok(false) => return Ok(ShardOutcome::Abandoned),
            Err(e) => last_error = e,
        }
    }
    Err(ServiceError::Protocol(format!(
        "result submission exhausted {attempts} attempt(s): {last_error}"
    )))
}

/// One submission attempt. `Ok(true)` = accepted (or duplicate),
/// `Ok(false)` = the coordinator conclusively rejected this result
/// (poisoned shard / corrupt verdict) and retrying is pointless,
/// `Err` = transient failure worth retrying.
fn send_result_once(options: &WorkerOptions, body: &str, ordinal: u64) -> Result<bool, String> {
    #[cfg(not(feature = "fault-inject"))]
    let _ = ordinal;
    #[cfg(feature = "fault-inject")]
    {
        if let Some(ms) = options.faults.stall_ms(ordinal) {
            std::thread::sleep(Duration::from_millis(ms));
        }
        if options.faults.drop_result.contains(&ordinal) {
            // Connect, say nothing, hang up: the abrupt disconnect every
            // crashed worker produces.
            let _ = http::connect(&options.coordinator, options.timeout);
            return Err("injected dropped connection".to_owned());
        }
        if options.faults.partial_result.contains(&ordinal) {
            let _ = send_partial(options, body);
            return Err("injected partial write".to_owned());
        }
    }
    let response = http::request(
        &options.coordinator,
        "POST",
        "/result",
        body,
        options.timeout,
    )
    .map_err(|e| format!("result submission failed: {e}"))?;
    #[cfg(feature = "fault-inject")]
    if options.faults.duplicate_result.contains(&ordinal) {
        // Deliver the same bytes again; the coordinator must answer the
        // replay idempotently.
        let _ = http::request(
            &options.coordinator,
            "POST",
            "/result",
            body,
            options.timeout,
        );
    }
    match response.status {
        200 => Ok(true),
        409 | 400 => Ok(false),
        status => Err(format!("coordinator answered {status}: {}", response.body)),
    }
}

/// Writes half a result body and hangs up — the injected partial-write
/// fault.
#[cfg(feature = "fault-inject")]
fn send_partial(options: &WorkerOptions, body: &str) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut stream = http::connect(&options.coordinator, options.timeout)?;
    let header = format!(
        "POST /result HTTP/1.1\r\nhost: {}\r\ncontent-type: application/json\r\n\
         content-length: {}\r\nconnection: close\r\n\r\n",
        options.coordinator,
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(&body.as_bytes()[..body.len() / 2])?;
    stream.flush()
}

/// Issues one coordinator request with bounded jittered retries on
/// transport errors — rides out a coordinator restart.
fn request_with_retry(
    options: &WorkerOptions,
    method: &str,
    path: &str,
    body: &str,
) -> Result<Value, ServiceError> {
    let attempts = options.retry.max_attempts.max(1);
    let mut last = String::new();
    for attempt in 1..=attempts {
        let backoff = options.retry.jittered_backoff(attempt, 0);
        if !backoff.is_zero() {
            std::thread::sleep(backoff);
        }
        match http::request(&options.coordinator, method, path, body, options.timeout) {
            Ok(response) if response.status == 200 => {
                return parse(&response.body).map_err(|e| {
                    ServiceError::Protocol(format!("unparseable coordinator response: {e}"))
                });
            }
            Ok(response) => {
                return Err(ServiceError::Http {
                    status: response.status,
                    body: response.body,
                })
            }
            Err(e) => last = e.to_string(),
        }
    }
    Err(ServiceError::Unreachable {
        coordinator: options.coordinator.clone(),
        attempts,
        last,
    })
}
