//! A minimal, dependency-free JSON codec for the service wire protocol.
//!
//! The workspace's offline devstub `serde_json` cannot serialize at
//! runtime, and the real crate may be absent entirely, so the
//! coordinator/worker protocol hand-rolls its JSON the same way the
//! telemetry sinks do. The encoder escapes strings exactly like
//! `serde_json` (the journal embeds serde-rendered lines verbatim inside
//! protocol strings, and those bytes must survive a round trip), and the
//! parser is a small recursive-descent reader with a depth bound.

use std::fmt::Write as _;

/// A parsed or to-be-encoded JSON value.
///
/// Objects preserve insertion order so encoding is deterministic; numbers
/// keep integers exact (`Int`) instead of routing everything through
/// `f64`, because suite indices and counters are `u64`.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer literal (no fraction or exponent).
    Int(i128),
    /// A fractional or exponent-form number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from `(key, value)` pairs.
    pub(crate) fn obj(fields: Vec<(&str, Value)>) -> Value {
        Value::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Builds a string value.
    pub(crate) fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Builds an integer value from any unsigned counter.
    pub(crate) fn u64(n: u64) -> Value {
        Value::Int(i128::from(n))
    }

    /// Looks up a key in an object.
    pub(crate) fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64` (integer literals only).
    pub(crate) fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (accepts integer literals too).
    #[allow(clippy::cast_precision_loss)]
    pub(crate) fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a bool.
    pub(crate) fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub(crate) fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Required-field accessors for protocol decoding: each names the
    /// missing or mistyped field in the error.
    pub(crate) fn req_str(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .and_then(Value::as_str)
            .ok_or_else(|| format!("missing or non-string field `{key}`"))
    }

    /// See [`Value::req_str`].
    pub(crate) fn req_u64(&self, key: &str) -> Result<u64, String> {
        self.get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("missing or non-integer field `{key}`"))
    }

    /// See [`Value::req_str`].
    pub(crate) fn req_arr(&self, key: &str) -> Result<&[Value], String> {
        self.get(key)
            .and_then(Value::as_arr)
            .ok_or_else(|| format!("missing or non-array field `{key}`"))
    }

    /// Encodes the value as compact JSON.
    pub(crate) fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Float(f) => {
                // A whole float renders without a fraction and re-parses
                // as `Int`; `as_f64` accepts both, so numeric fields
                // roundtrip. Non-finite values have no JSON form.
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => escape_into(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Escapes a string exactly like `serde_json`: the two mandatory escapes,
/// short forms for the common control characters, `\u00XX` for the rest,
/// and raw UTF-8 for everything else.
fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub(crate) fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at offset {}",
                char::from(b),
                self.pos
            ))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err("document nests too deeply".to_owned());
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.value(depth + 1)?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at offset {start}"))?;
        if integral {
            if let Ok(n) = text.parse::<i128>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| format!("invalid number `{text}` at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| format!("unterminated string at offset {}", self.pos))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| format!("truncated escape at offset {}", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let unit = self.hex4()?;
                            // Combine UTF-16 surrogate pairs; a lone
                            // surrogate becomes U+FFFD, matching lossy
                            // decoding.
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((u32::from(unit) - 0xD800) << 10)
                                        + (u32::from(low) - 0xDC00);
                                    char::from_u32(combined).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(u32::from(unit)).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(format!(
                                "unknown escape `\\{}` at offset {}",
                                char::from(other),
                                self.pos
                            ))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| format!("invalid UTF-8 at offset {}", self.pos))?;
                    let c = s.chars().next().expect("non-empty checked above");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, String> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| format!("truncated \\u escape at offset {}", self.pos))?;
        let text = std::str::from_utf8(digits)
            .map_err(|_| format!("invalid \\u escape at offset {}", self.pos))?;
        let unit = u16::from_str_radix(text, 16)
            .map_err(|_| format!("invalid \\u escape `{text}` at offset {}", self.pos))?;
        self.pos = end;
        Ok(unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for text in ["null", "true", "false", "0", "-17", "123456789012345678901"] {
            let v = parse(text).expect(text);
            assert_eq!(parse(&v.render()).expect("re-parse"), v, "{text}");
        }
        assert_eq!(parse("0.5").unwrap().as_f64(), Some(0.5));
        assert_eq!(parse("42").unwrap().as_f64(), Some(42.0));
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
    }

    #[test]
    fn strings_escape_like_serde_json() {
        let nasty = "a\"b\\c\nd\re\tf\u{8}g\u{c}h\u{1}i — ünïcødé";
        let rendered = Value::str(nasty).render();
        assert_eq!(
            rendered,
            "\"a\\\"b\\\\c\\nd\\re\\tf\\bg\\fh\\u0001i — ünïcødé\""
        );
        assert_eq!(parse(&rendered).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn objects_preserve_order_and_roundtrip() {
        let v = Value::obj(vec![
            ("b", Value::u64(2)),
            ("a", Value::Arr(vec![Value::Null, Value::Bool(true)])),
            ("nested", Value::obj(vec![("x", Value::str("y"))])),
        ]);
        let text = v.render();
        assert_eq!(text, "{\"b\":2,\"a\":[null,true],\"nested\":{\"x\":\"y\"}}");
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap().as_str(), Some("😀"));
        assert_eq!(parse("\"\\ud83d\"").unwrap().as_str(), Some("\u{FFFD}"));
    }

    #[test]
    fn malformed_documents_error() {
        for text in [
            "", "{", "[1,", "{\"a\"}", "\"abc", "01x", "nul", "[1 2]", "{}}",
        ] {
            assert!(parse(text).is_err(), "`{text}` should not parse");
        }
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err(), "depth bound enforced");
    }

    #[test]
    fn required_field_errors_name_the_field() {
        let v = parse("{\"a\":1}").unwrap();
        assert_eq!(v.req_u64("a"), Ok(1));
        assert!(v.req_str("a").unwrap_err().contains("`a`"));
        assert!(v.req_u64("b").unwrap_err().contains("`b`"));
        assert!(v.req_arr("a").unwrap_err().contains("`a`"));
    }
}
