//! Durable campaign journaling: checkpoint every completed test, resume a
//! killed campaign where it left off.
//!
//! A journal is a JSON-lines file: one header record identifying the
//! campaign, then one record per completed test — a full [`TestReport`] for
//! a validated test or a [`QuarantineRecord`] for one the supervisor gave
//! up on. Records are appended and flushed as tests finish, so a campaign
//! killed mid-run (power cut, wedged platform, operator ctrl-C) keeps every
//! verdict it already earned. Resuming replays the journal, skips the
//! recorded suite indices without simulating a single iteration, and the
//! final [`ConfigReport`](crate::ConfigReport) equals an uninterrupted
//! run's byte for byte — test generation is deterministic, so only the
//! missing indices are executed.
//!
//! Replay is deliberately forgiving: a truncated final line (the usual
//! scar of a mid-write kill) or a corrupt record is skipped with a counter,
//! costing at most a re-run of the affected tests, never the campaign.
//!
//! Since format version 2 every line carries a CRC32C frame suffix (see
//! [`crate::durable`]), so replay detects not just unparseable scars but
//! any single-byte corruption — a bit-flipped verdict that still parses is
//! skipped (and surfaced), never trusted. `mtracecheck fsck` audits and
//! repairs journals offline.

use crate::campaign::SpillSummary;
#[cfg(feature = "fault-inject")]
use crate::durable::DiskFaultPlan;
use crate::durable::{commit_atomically, frame_line, unframe_line};
use crate::supervisor::QuarantineRecord;
use crate::telemetry::logger;
use crate::{CampaignConfig, TestReport};
use mtc_gen::TestConfig;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Journal format version; bumped on incompatible record changes.
/// Version 2 added the per-line CRC32C frame suffix.
pub const JOURNAL_VERSION: u32 = 2;

/// The identity of the campaign a journal belongs to. Resume refuses a
/// journal whose header does not match the resuming configuration — the
/// recorded verdicts would describe different tests.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JournalHeader {
    /// Journal format version.
    pub version: u32,
    /// Full test-generation configuration (ISA, threads, ops, addresses,
    /// seed, fractions — everything that decides which programs exist).
    pub test: TestConfig,
    /// Loop iterations per test.
    pub iterations: u64,
    /// Suite size.
    pub tests: u64,
}

impl JournalHeader {
    fn of(config: &CampaignConfig) -> Self {
        JournalHeader {
            version: JOURNAL_VERSION,
            test: config.test.clone(),
            iterations: config.iterations,
            tests: config.tests,
        }
    }
}

/// One journal line.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
enum JournalRecord {
    /// First line: campaign identity.
    Header(JournalHeader),
    /// A validated test.
    Test {
        /// Suite index.
        index: u64,
        /// The full verdict (boxed: a report dwarfs the other variants).
        report: Box<TestReport>,
    },
    /// A test the supervisor quarantined.
    Quarantine(QuarantineRecord),
    /// Run-level summary appended by checkpoint finalization.
    Footer(JournalFooter),
}

/// Run-level summary written as the journal's last line when a campaign
/// finalizes its checkpoint. Purely informational: resume ignores footers
/// (their statistics describe host-resource behaviour of the *previous*
/// process, and spill counts are not deterministic across worker counts).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct JournalFooter {
    /// Tests recorded in the journal (validated).
    pub tests: u64,
    /// Tests recorded as quarantined.
    pub quarantined: u64,
    /// Aggregate spill statistics across the campaign's tests.
    pub spill: SpillSummary,
    /// Verdict-cache counters, when the campaign ran with
    /// [`CampaignConfig::verdict_cache`] (all zero otherwise; defaulted so
    /// pre-cache journals still parse).
    #[serde(default)]
    pub cache: crate::certs::CacheSummary,
}

/// A completed entry replayed from a journal.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum ReplayEntry {
    /// The test validated; reuse its report verbatim.
    Test(Box<TestReport>),
    /// The test was quarantined; do not retry it on resume.
    Quarantine(QuarantineRecord),
}

/// Append-only campaign checkpoint log with resume replay.
///
/// Shared by the campaign's worker threads (`&self` append methods — the
/// writer is internally locked), so records land as tests complete, in
/// completion order; indices in the records restore suite order on replay.
/// Write failures never kill the campaign: the journal marks itself
/// degraded, the run continues, and the report carries the marker.
#[derive(Debug)]
pub struct CampaignJournal {
    path: PathBuf,
    writer: Mutex<File>,
    replay: BTreeMap<u64, ReplayEntry>,
    /// Unparseable (corrupt or truncated) lines skipped during replay.
    skipped_lines: u64,
    /// A record failed to persist; the journal is incomplete.
    degraded: AtomicBool,
    /// Injected storage faults (testing only).
    #[cfg(feature = "fault-inject")]
    disk_faults: DiskFaultPlan,
}

impl CampaignJournal {
    /// Creates a fresh journal for `config` and writes its header.
    ///
    /// The header is written to a temp file, fsynced, and atomically
    /// renamed over `path`: a kill at any instant leaves either the old
    /// journal intact or the new one complete — never a truncated file
    /// (the old `File::create` truncated first and wrote second).
    ///
    /// # Errors
    ///
    /// I/O or serialization failure creating the file or writing the
    /// header.
    pub fn create(path: impl AsRef<Path>, config: &CampaignConfig) -> Result<Self, JournalError> {
        let path = path.as_ref().to_owned();
        let header = frame_line(&serde_json::to_string(&JournalRecord::Header(
            JournalHeader::of(config),
        ))?);
        commit_atomically(&path, |file| writeln!(file, "{header}"))?;
        let writer = OpenOptions::new().append(true).open(&path)?;
        Ok(CampaignJournal {
            path,
            writer: Mutex::new(writer),
            replay: BTreeMap::new(),
            skipped_lines: 0,
            degraded: AtomicBool::new(false),
            #[cfg(feature = "fault-inject")]
            disk_faults: config.disk_faults.clone(),
        })
    }

    /// Opens an existing journal for resume — or creates a fresh one if
    /// `path` does not exist yet, so `--resume` is safe on a first run.
    ///
    /// Replays every parseable record; corrupt or truncated lines are
    /// counted and skipped (their tests simply run again).
    ///
    /// # Errors
    ///
    /// I/O failure, an unreadable or missing header, or a header recorded
    /// for a different campaign ([`JournalError::Mismatch`]).
    pub fn resume(path: impl AsRef<Path>, config: &CampaignConfig) -> Result<Self, JournalError> {
        let path = path.as_ref();
        if !path.exists() {
            return Self::create(path, config);
        }
        let reader = BufReader::new(File::open(path)?);
        let mut lines = reader.lines();
        let header: JournalHeader = match lines.next() {
            // The header must both frame-validate and parse; a corrupt
            // first line means nothing in the file can be trusted.
            Some(line) => match unframe_line(&line?)
                .map_err(|_| JournalError::MissingHeader)
                .and_then(|payload| serde_json::from_str(payload).map_err(JournalError::Format))
            {
                Ok(JournalRecord::Header(header)) => header,
                Ok(_) => return Err(JournalError::MissingHeader),
                Err(e) => return Err(e),
            },
            None => return Err(JournalError::MissingHeader),
        };
        let expected = JournalHeader::of(config);
        if header != expected {
            return Err(JournalError::Mismatch {
                expected: Box::new(expected),
                found: Box::new(header),
            });
        }
        let mut replay = BTreeMap::new();
        let mut skipped = 0u64;
        for line in lines {
            let line = line?;
            // CRC first: a record whose frame fails is corrupt even when
            // its JSON still parses (the bit flip changed a value).
            let Ok(payload) = unframe_line(&line) else {
                skipped += 1;
                continue;
            };
            match serde_json::from_str(payload) {
                Ok(JournalRecord::Test { index, report }) => {
                    replay.insert(index, ReplayEntry::Test(report));
                }
                Ok(JournalRecord::Quarantine(record)) => {
                    replay.insert(record.index, ReplayEntry::Quarantine(record));
                }
                // Footers are informational; a resumed run writes its own.
                Ok(JournalRecord::Footer(_)) => {}
                // A second header is as corrupt as an unparseable line.
                Ok(JournalRecord::Header(_)) | Err(_) => skipped += 1,
            }
        }
        let writer = OpenOptions::new().append(true).open(path)?;
        Ok(CampaignJournal {
            path: path.to_owned(),
            writer: Mutex::new(writer),
            replay,
            skipped_lines: skipped,
            degraded: AtomicBool::new(false),
            #[cfg(feature = "fault-inject")]
            disk_faults: config.disk_faults.clone(),
        })
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Completed entries replayed from the file (0 for a fresh journal).
    pub fn replayed(&self) -> usize {
        self.replay.len()
    }

    /// Corrupt or truncated lines skipped during replay.
    pub fn skipped_lines(&self) -> u64 {
        self.skipped_lines
    }

    /// Whether any record failed to persist.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    pub(crate) fn replay_entry(&self, index: u64) -> Option<&ReplayEntry> {
        self.replay.get(&index)
    }

    /// Appends one record: a single framed line, flushed immediately so a
    /// kill loses at most the record being written. `index` keys the
    /// fault-injection plan (unused in production builds).
    #[cfg_attr(not(feature = "fault-inject"), allow(unused_variables))]
    fn append(&self, index: u64, record: &JournalRecord) -> Result<(), JournalError> {
        let line = frame_line(&serde_json::to_string(record)?);
        let mut writer = self.writer.lock().expect("journal writer lock");
        #[cfg(feature = "fault-inject")]
        {
            use std::io::Write as _;
            if self.disk_faults.journal_enospc(index) {
                return Err(JournalError::Io(crate::durable::enospc()));
            }
            if let Some(keep) = self.disk_faults.torn_journal(index) {
                // A torn write "succeeds": the process never learns the
                // record (and its newline) did not fully land.
                writer.write_all(&line.as_bytes()[..keep.min(line.len())])?;
                writer.flush()?;
                return Ok(());
            }
            if let Some(offset) = self.disk_faults.flip_journal(index) {
                let mut bytes = line.clone().into_bytes();
                if let Some(b) = bytes.get_mut(offset) {
                    *b ^= 0x01;
                }
                bytes.push(b'\n');
                writer.write_all(&bytes)?;
                writer.flush()?;
                return Ok(());
            }
        }
        writeln!(writer, "{line}")?;
        writer.flush()?;
        Ok(())
    }

    fn append_or_degrade(&self, index: u64, record: &JournalRecord, what: &str) {
        if let Err(e) = self.append(index, record) {
            self.mark_degraded(&format!("{what}: {e}"));
        }
    }

    /// Records a completed test. Failures degrade the journal instead of
    /// propagating — losing a checkpoint must never lose the campaign.
    pub(crate) fn record_test(&self, index: u64, report: &TestReport) {
        self.append_or_degrade(
            index,
            &JournalRecord::Test {
                index,
                report: Box::new(report.clone()),
            },
            &format!("journal write for test {index} failed"),
        );
    }

    /// Records a quarantined test; failures degrade the journal.
    pub(crate) fn record_quarantine(&self, record: &QuarantineRecord) {
        self.append_or_degrade(
            record.index,
            &JournalRecord::Quarantine(record.clone()),
            &format!("journal write for quarantined test {} failed", record.index),
        );
    }

    /// Compacts the journal into its canonical checkpoint form: the header
    /// followed by one record per completed suite index, in suite order,
    /// with corrupt lines and superseded duplicates dropped. The compacted
    /// file is written to a temp sibling, fsynced, and atomically renamed
    /// over the journal, so a kill during checkpoint finalization can never
    /// truncate the existing journal — the old append-order file survives
    /// intact until the rename commits.
    ///
    /// Two campaigns that completed the same suite finalize to byte-
    /// identical journals even when their tests finished (and were
    /// appended) in different thread orders. (The optional `footer`, which
    /// carries host-resource statistics that *do* vary across worker
    /// counts, is the one exception — cross-run byte comparisons strip it.)
    ///
    /// # Errors
    ///
    /// I/O failure reading or rewriting the journal, or a journal whose
    /// header is no longer parseable.
    pub fn finalize(&self, footer: Option<&JournalFooter>) -> Result<(), JournalError> {
        let mut writer = self.writer.lock().expect("journal writer lock");
        writer.flush()?;
        #[cfg(feature = "fault-inject")]
        if self.disk_faults.commit_fsync_fails {
            return Err(JournalError::Io(std::io::Error::other(
                "injected fsync failure (checkpoint not committed)",
            )));
        }
        let reader = BufReader::new(File::open(&self.path)?);
        let mut header: Option<String> = None;
        let mut records: BTreeMap<u64, String> = BTreeMap::new();
        for line in reader.lines() {
            let line = line?;
            // Framed lines pass through the checkpoint verbatim — the
            // frame is validated, then the original bytes are kept.
            let Ok(payload) = unframe_line(&line) else {
                continue;
            };
            match serde_json::from_str::<JournalRecord>(payload) {
                Ok(JournalRecord::Header(_)) if header.is_none() => header = Some(line),
                Ok(JournalRecord::Test { index, .. }) => {
                    records.insert(index, line);
                }
                Ok(JournalRecord::Quarantine(record)) => {
                    records.insert(record.index, line);
                }
                // Corrupt lines, duplicate headers, and stale footers are
                // dropped by the checkpoint; the current run appends its
                // own footer below.
                Ok(JournalRecord::Header(_) | JournalRecord::Footer(_)) | Err(_) => {}
            }
        }
        let header = header.ok_or(JournalError::MissingHeader)?;
        let footer_line = footer
            .map(|f| {
                serde_json::to_string(&JournalRecord::Footer(f.clone()))
                    .map(|payload| frame_line(&payload))
            })
            .transpose()?;
        commit_atomically(&self.path, |file| {
            writeln!(file, "{header}")?;
            for line in records.values() {
                writeln!(file, "{line}")?;
            }
            if let Some(line) = &footer_line {
                writeln!(file, "{line}")?;
            }
            Ok(())
        })?;
        *writer = OpenOptions::new().append(true).open(&self.path)?;
        Ok(())
    }

    /// Finalizes the checkpoint; on failure the journal degrades (the
    /// append-order file is still a valid journal) instead of propagating.
    pub(crate) fn finalize_or_degrade(&self, footer: Option<&JournalFooter>) {
        if let Err(e) = self.finalize(footer) {
            self.mark_degraded(&format!("journal checkpoint finalization failed: {e}"));
        }
    }

    /// Marks the journal incomplete and says so once on stderr.
    pub(crate) fn mark_degraded(&self, reason: &str) {
        if !self.degraded.swap(true, Ordering::Relaxed) {
            logger::warn(format_args!(
                "warning: campaign journal {} is incomplete ({reason}); \
                 resume will re-run the unrecorded tests",
                self.path.display()
            ));
        } else {
            logger::warn(format_args!("warning: {reason}"));
        }
    }
}

/// A journal's parsed contents, as loaded by [`read_journal`] — the
/// read-only view `mtracecheck verify` replays certificates against.
#[derive(Clone, Debug, PartialEq)]
pub struct JournalContents {
    /// Campaign identity (test configuration, iterations, suite size).
    pub header: JournalHeader,
    /// Validated tests' reports, in suite order.
    pub tests: Vec<TestReport>,
    /// Quarantined tests, in suite order.
    pub quarantined: Vec<QuarantineRecord>,
    /// The run-level footer, when the journal was finalized.
    pub footer: Option<JournalFooter>,
}

/// Loads a campaign journal read-only, without resuming it: every
/// parseable record is returned, corrupt lines are skipped (matching
/// resume's forgiveness), and later records for a suite index supersede
/// earlier ones.
///
/// # Errors
///
/// I/O failure, or a file whose first line is not a journal header.
pub fn read_journal(path: impl AsRef<Path>) -> Result<JournalContents, JournalError> {
    let reader = BufReader::new(File::open(path.as_ref())?);
    let mut lines = reader.lines();
    let header: JournalHeader = match lines.next() {
        Some(line) => match unframe_line(&line?)
            .map_err(|_| JournalError::MissingHeader)
            .and_then(|payload| serde_json::from_str(payload).map_err(JournalError::Format))
        {
            Ok(JournalRecord::Header(header)) => header,
            Ok(_) => return Err(JournalError::MissingHeader),
            Err(e) => return Err(e),
        },
        None => return Err(JournalError::MissingHeader),
    };
    let mut entries: BTreeMap<u64, ReplayEntry> = BTreeMap::new();
    let mut footer = None;
    for line in lines {
        let line = line?;
        let Ok(payload) = unframe_line(&line) else {
            continue;
        };
        match serde_json::from_str(payload) {
            Ok(JournalRecord::Test { index, report }) => {
                entries.insert(index, ReplayEntry::Test(report));
            }
            Ok(JournalRecord::Quarantine(record)) => {
                entries.insert(record.index, ReplayEntry::Quarantine(record));
            }
            Ok(JournalRecord::Footer(f)) => footer = Some(f),
            Ok(JournalRecord::Header(_)) | Err(_) => {}
        }
    }
    let mut contents = JournalContents {
        header,
        tests: Vec::new(),
        quarantined: Vec::new(),
        footer,
    };
    for entry in entries.into_values() {
        match entry {
            ReplayEntry::Test(report) => contents.tests.push(*report),
            ReplayEntry::Quarantine(record) => contents.quarantined.push(record),
        }
    }
    Ok(contents)
}

/// Renders the canonical header line for a campaign — byte-identical to
/// the first line [`CampaignJournal::create`] writes. The distributed
/// coordinator uses these per-line renderers to assemble a merged journal
/// that matches a single-machine run's bytes exactly.
///
/// # Errors
///
/// Serialization failure (under the offline serde devstub, always).
pub(crate) fn render_header_line(config: &CampaignConfig) -> Result<String, JournalError> {
    Ok(frame_line(&serde_json::to_string(&JournalRecord::Header(
        JournalHeader::of(config),
    ))?))
}

/// Renders the canonical record line for a validated test.
///
/// # Errors
///
/// Serialization failure (under the offline serde devstub, always).
pub(crate) fn render_test_line(index: u64, report: &TestReport) -> Result<String, JournalError> {
    Ok(frame_line(&serde_json::to_string(&JournalRecord::Test {
        index,
        report: Box::new(report.clone()),
    })?))
}

/// Renders the canonical record line for a quarantined test.
///
/// # Errors
///
/// Serialization failure (under the offline serde devstub, always).
pub(crate) fn render_quarantine_line(record: &QuarantineRecord) -> Result<String, JournalError> {
    Ok(frame_line(&serde_json::to_string(
        &JournalRecord::Quarantine(record.clone()),
    )?))
}

/// Renders the canonical footer line.
///
/// # Errors
///
/// Serialization failure (under the offline serde devstub, always).
pub(crate) fn render_footer_line(footer: &JournalFooter) -> Result<String, JournalError> {
    Ok(frame_line(&serde_json::to_string(&JournalRecord::Footer(
        footer.clone(),
    ))?))
}

/// Error creating or resuming a [`CampaignJournal`].
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A record could not be (de)serialized.
    Format(serde_json::Error),
    /// The file's first line is not a journal header.
    MissingHeader,
    /// The journal belongs to a different campaign.
    Mismatch {
        /// Header the resuming configuration implies.
        expected: Box<JournalHeader>,
        /// Header found in the file.
        found: Box<JournalHeader>,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Format(e) => write!(f, "journal format error: {e}"),
            JournalError::MissingHeader => {
                write!(f, "journal has no header line (not a campaign journal?)")
            }
            JournalError::Mismatch { expected, found } => write!(
                f,
                "journal belongs to a different campaign: found {} seed {} \
                 ({} iterations x {} tests), expected {} seed {} ({} iterations x {} tests)",
                found.test.name(),
                found.test.seed,
                found.iterations,
                found.tests,
                expected.test.name(),
                expected.test.seed,
                expected.iterations,
                expected.tests,
            ),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            JournalError::Format(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

impl From<serde_json::Error> for JournalError {
    fn from(e: serde_json::Error) -> Self {
        JournalError::Format(e)
    }
}
