//! A reference-counted observed-edge set maintained as a running delta.
//!
//! Consecutive signatures differ in a handful of load outcomes, but each
//! outcome slot contributes a small fixed bundle of rf/fr edges. Rebuilding
//! and re-canonicalizing the full edge list per signature — then diffing it
//! against the previous one — costs Θ(E) per graph even when almost nothing
//! changed. [`DeltaObservations`] keeps the edge multiset live across
//! signatures instead: the checker's caller adds the changed slots' new
//! edge bundles and removes the old ones, and the set tracks which edges
//! made a net absent-to-present transition — exactly the `obs \ base` diff
//! the collective checker's windowing needs (§4.2), in O(changed edges).
//!
//! The universe of edges a test can ever contribute is fixed and small, so
//! callers on the hot path [`intern`](DeltaObservations::intern) each pair
//! once up front and update by dense id ([`add_id`](DeltaObservations::add_id)
//! / [`remove_id`](DeltaObservations::remove_id)): a refcount bump is then
//! three flat array accesses, no per-source scan. The pair-keyed
//! [`add`](DeltaObservations::add)/[`remove`](DeltaObservations::remove)
//! remain as a convenience that interns on first sight.

use crate::topo::ObsAdj;
use crate::ObservedEdges;

/// An observed-edge multiset updated in place between graphs.
///
/// The live edge set (edges with positive count) always equals the
/// canonical [`ObservedEdges`] of the current contributions, and
/// [`new_edges`](DeltaObservations::new_edges) reports the edges present
/// now but absent when [`begin`](DeltaObservations::begin) was last called
/// — including edges removed and re-added within one epoch, which are
/// correctly *not* new.
///
/// Feed it to [`CollectiveChecker::push_delta`](crate::CollectiveChecker::push_delta):
///
/// ```
/// use mtc_graph::DeltaObservations;
///
/// let mut set = DeltaObservations::new(4);
/// set.begin();
/// set.add(0, 2);
/// set.add(0, 2); // second contribution: refcount 2, still one edge
/// set.add(1, 3);
/// assert_eq!(set.new_edges().collect::<Vec<_>>(), vec![(0, 2), (1, 3)]);
/// set.begin();
/// set.remove(0, 2);
/// set.add(2, 0);
/// assert_eq!(set.new_edges().collect::<Vec<_>>(), vec![(2, 0)]);
/// ```
#[derive(Clone, Debug)]
pub struct DeltaObservations {
    /// Interned edge endpoints, indexed by id.
    ends: Vec<(u32, u32)>,
    /// How many live contributions currently assert each edge, by id.
    counts: Vec<u32>,
    /// `epoch << 1 | present_at_epoch` per edge id: the last epoch the edge
    /// was touched, and whether `count > 0` held when it was first touched
    /// in that epoch — the "was it in the base?" half of the diff.
    eps: Vec<u32>,
    /// Per-source `(target, id)` pairs, for interning lookups only.
    pairs: Vec<Vec<(u32, u32)>>,
    /// Per-source targets with positive count, ascending — the live graph,
    /// read directly by the sorting routines. Stored as a fixed-stride
    /// arena (`live[u * stride..u * stride + live_len[u]]`) so a window
    /// re-sort's successor scans touch one short cache run per vertex
    /// instead of chasing a `Vec<Vec<_>>` header and its far heap block;
    /// the stride doubles (rare) when any source outgrows it.
    live: Vec<u32>,
    /// Live out-degree per source.
    live_len: Vec<u32>,
    /// Target capacity per source in `live`.
    stride: usize,
    epoch: u32,
    /// Edge ids first touched in the current epoch.
    touched: Vec<u32>,
}

impl DeltaObservations {
    /// Creates an empty set over `num_vertices` graph vertices.
    pub fn new(num_vertices: usize) -> Self {
        let stride = 4;
        DeltaObservations {
            ends: Vec::new(),
            counts: Vec::new(),
            eps: Vec::new(),
            pairs: vec![Vec::new(); num_vertices],
            live: vec![0; num_vertices * stride],
            live_len: vec![0; num_vertices],
            stride,
            epoch: 0,
            touched: Vec::new(),
        }
    }

    /// Registers edge `u -> v` and returns its dense id; the same pair
    /// always maps to the same id. Callers that intern pairs in sorted
    /// order get ids whose order matches the pairs' lexicographic order.
    ///
    /// # Panics
    ///
    /// Panics on self-loops — they never contribute an edge (canonical
    /// observation sets drop them), so callers filter them out.
    pub fn intern(&mut self, u: u32, v: u32) -> u32 {
        assert_ne!(
            u, v,
            "self-loops contribute no edge; filter before interning"
        );
        let list = &mut self.pairs[u as usize];
        if let Some(&(_, id)) = list.iter().find(|&&(t, _)| t == v) {
            return id;
        }
        let id = self.ends.len() as u32;
        list.push((v, id));
        self.ends.push((u, v));
        self.counts.push(0);
        self.eps.push(0);
        id
    }

    /// Starts the next graph's updates; call once before the `add`/`remove`
    /// calls for each graph, including the first.
    pub fn begin(&mut self) {
        self.epoch += 1;
        assert!(self.epoch < u32::MAX >> 1, "epoch counter exhausted");
        self.touched.clear();
    }

    /// Stamps `id` into the current epoch, recording its pre-epoch presence
    /// on first touch.
    #[inline]
    fn touch_id(&mut self, id: u32) {
        let ep = &mut self.eps[id as usize];
        if *ep >> 1 != self.epoch {
            *ep = (self.epoch << 1) | u32::from(self.counts[id as usize] > 0);
            self.touched.push(id);
        }
    }

    /// Records one more contribution asserting the interned edge `id`.
    #[inline]
    pub fn add_id(&mut self, id: u32) {
        self.touch_id(id);
        let count = &mut self.counts[id as usize];
        *count += 1;
        if *count == 1 {
            let (u, v) = self.ends[id as usize];
            self.live_insert(u, v);
        }
    }

    /// Retracts one contribution asserting the interned edge `id`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) when the edge has no live contribution.
    #[inline]
    pub fn remove_id(&mut self, id: u32) {
        self.touch_id(id);
        let count = &mut self.counts[id as usize];
        debug_assert!(*count > 0, "removing edge id {id} with no contribution");
        *count -= 1;
        if *count == 0 {
            let (u, v) = self.ends[id as usize];
            self.live_remove(u, v);
        }
    }

    /// Records one more contribution asserting edge `u -> v`. Self-loops
    /// are ignored, mirroring canonicalization.
    pub fn add(&mut self, u: u32, v: u32) {
        if u == v {
            return;
        }
        let id = self.intern(u, v);
        self.add_id(id);
    }

    /// Retracts one contribution asserting edge `u -> v`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) when the edge has no live contribution.
    pub fn remove(&mut self, u: u32, v: u32) {
        if u == v {
            return;
        }
        let id = self.intern(u, v);
        self.remove_id(id);
    }

    /// Edges present now but absent at the last [`begin`], in touch order.
    pub fn new_edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.touched
            .iter()
            .filter(|&&id| self.counts[id as usize] > 0 && self.eps[id as usize] & 1 == 0)
            .map(|&id| self.ends[id as usize])
    }

    /// Materializes the live edge set as canonical [`ObservedEdges`].
    pub fn to_observed(&self) -> ObservedEdges {
        let mut raw = Vec::new();
        for u in 0..self.live_len.len() {
            for &v in self.live_targets(u as u32) {
                raw.push((u as u32, v));
            }
        }
        ObservedEdges::from_raw(raw)
    }

    /// The ascending live targets of `u`.
    #[inline]
    fn live_targets(&self, u: u32) -> &[u32] {
        let base = u as usize * self.stride;
        &self.live[base..base + self.live_len[u as usize] as usize]
    }

    /// Inserts `v` into `u`'s ascending live run, doubling the stride when
    /// the run is full.
    fn live_insert(&mut self, u: u32, v: u32) {
        if self.live_len[u as usize] as usize == self.stride {
            self.grow_stride();
        }
        let base = u as usize * self.stride;
        let len = self.live_len[u as usize] as usize;
        let run = &mut self.live[base..base + len + 1];
        let at = run[..len].partition_point(|&t| t < v);
        run.copy_within(at..len, at + 1);
        run[at] = v;
        self.live_len[u as usize] += 1;
    }

    /// Removes `v` from `u`'s live run.
    fn live_remove(&mut self, u: u32, v: u32) {
        let base = u as usize * self.stride;
        let len = self.live_len[u as usize] as usize;
        let run = &mut self.live[base..base + len];
        let at = run.partition_point(|&t| t < v);
        debug_assert_eq!(run.get(at), Some(&v));
        run.copy_within(at + 1..len, at);
        self.live_len[u as usize] -= 1;
    }

    #[cold]
    fn grow_stride(&mut self) {
        let new_stride = self.stride * 2;
        let mut next = vec![0u32; self.live_len.len() * new_stride];
        for (u, &len) in self.live_len.iter().enumerate() {
            let old = u * self.stride;
            let new = u * new_stride;
            next[new..new + len as usize].copy_from_slice(&self.live[old..old + len as usize]);
        }
        self.live = next;
        self.stride = new_stride;
    }
}

impl ObsAdj for DeltaObservations {
    fn for_successors<F: FnMut(u32)>(&self, v: u32, mut f: F) {
        for &w in self.live_targets(v) {
            f(w);
        }
    }

    fn bump_indegrees(&self, indegree: &mut [u32]) {
        for u in 0..self.live_len.len() {
            for &w in self.live_targets(u as u32) {
                indegree[w as usize] += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn live_edges(set: &DeltaObservations) -> Vec<(u32, u32)> {
        set.to_observed().edges().to_vec()
    }

    #[test]
    fn refcounts_collapse_to_a_set() {
        let mut set = DeltaObservations::new(4);
        set.begin();
        set.add(0, 1);
        set.add(0, 1);
        set.add(0, 3);
        set.add(2, 2); // self-loop: dropped
        assert_eq!(live_edges(&set), vec![(0, 1), (0, 3)]);
        set.begin();
        set.remove(0, 1);
        assert_eq!(
            live_edges(&set),
            vec![(0, 1), (0, 3)],
            "one contribution left"
        );
        set.remove(0, 1);
        assert_eq!(live_edges(&set), vec![(0, 3)]);
    }

    #[test]
    fn new_edges_are_net_transitions() {
        let mut set = DeltaObservations::new(4);
        set.begin();
        set.add(0, 1);
        set.add(1, 2);
        assert_eq!(set.new_edges().collect::<Vec<_>>(), vec![(0, 1), (1, 2)]);

        // Remove then re-add within one epoch: present before, present
        // after — not new.
        set.begin();
        set.remove(0, 1);
        set.add(0, 1);
        assert_eq!(set.new_edges().count(), 0);

        // A second contribution to an existing edge is not new either.
        set.begin();
        set.add(1, 2);
        assert_eq!(set.new_edges().count(), 0);

        // Add then remove within one epoch: absent before, absent after.
        set.begin();
        set.add(3, 0);
        set.remove(3, 0);
        assert_eq!(set.new_edges().count(), 0);

        // Dead edges resurrect as new.
        set.begin();
        set.remove(1, 2);
        set.remove(1, 2);
        set.begin();
        set.add(1, 2);
        assert_eq!(set.new_edges().collect::<Vec<_>>(), vec![(1, 2)]);
    }

    #[test]
    fn interned_ids_are_stable_and_equivalent() {
        let mut by_pair = DeltaObservations::new(4);
        let mut by_id = DeltaObservations::new(4);
        let a = by_id.intern(0, 1);
        let b = by_id.intern(1, 2);
        assert_eq!(by_id.intern(0, 1), a, "re-interning returns the same id");
        by_pair.begin();
        by_id.begin();
        by_pair.add(0, 1);
        by_pair.add(1, 2);
        by_pair.add(0, 1);
        by_id.add_id(a);
        by_id.add_id(b);
        by_id.add_id(a);
        assert_eq!(live_edges(&by_pair), live_edges(&by_id));
        assert_eq!(
            by_pair.new_edges().collect::<Vec<_>>(),
            by_id.new_edges().collect::<Vec<_>>()
        );
        by_pair.begin();
        by_id.begin();
        by_pair.remove(0, 1);
        by_pair.remove(0, 1);
        by_id.remove_id(a);
        by_id.remove_id(a);
        assert_eq!(live_edges(&by_pair), live_edges(&by_id));
        assert_eq!(live_edges(&by_id), vec![(1, 2)]);
    }

    #[test]
    fn successors_stay_sorted_across_stride_growth() {
        let mut set = DeltaObservations::new(12);
        set.begin();
        // More targets than the initial stride holds, inserted unsorted.
        for &v in &[3, 1, 2, 7, 5, 11, 4, 6, 8] {
            set.add(0, v);
        }
        let mut seen = Vec::new();
        set.for_successors(0, |w| seen.push(w));
        assert_eq!(seen, vec![1, 2, 3, 4, 5, 6, 7, 8, 11]);
        let mut indegree = vec![0u32; 12];
        set.bump_indegrees(&mut indegree);
        assert_eq!(indegree.iter().sum::<u32>(), 9);
        assert_eq!(indegree[0], 0);
    }
}
