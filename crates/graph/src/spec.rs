//! Constraint-graph structure: vertices, static edges, and the observed
//! edges derived from a reads-from outcome (§2 of the paper).
//!
//! All executions of one test share the same vertices (its instructions)
//! and the same *static* edges — MCM-mandated program order and intra-thread
//! write serialization — and differ only in *observed* edges: reads-from
//! (rf) and from-read (fr). [`TestGraphSpec`] holds everything shared;
//! [`ObservedEdges`] is the per-execution part, kept deliberately tiny
//! (≈ 2 edges per load) because collective checking diffs millions of them.

use mtc_isa::{FenceKind, Instr, Mcm, OpId, Program, ReadsFrom, Tid};
use serde::{Deserialize, Serialize};

/// Options controlling observed-edge construction.
#[derive(Copy, Clone, Debug, Eq, PartialEq, Hash, Serialize, Deserialize, Default)]
pub struct CheckOptions {
    /// Include intra-thread reads-from edges. The paper disables these
    /// (footnote 4): a load satisfied by store-buffer forwarding completes
    /// before its own store becomes globally visible, so the edge would
    /// produce false positives on any machine without single-copy
    /// atomicity.
    pub intra_thread_rf: bool,
}

/// The shared, static part of every constraint graph of one test program
/// under one MCM.
///
/// Static adjacency is stored in CSR (compressed sparse row) form: one
/// flat `static_targets` array of successor vertex ids, indexed by the
/// prefix-offset array `static_offsets` (`len == num_vertices + 1`), so
/// `static_successors(v)` is a contiguous slice and a whole-graph sweep
/// touches one cache-friendly allocation instead of one `Vec` per vertex.
#[derive(Clone, Debug)]
pub struct TestGraphSpec {
    /// Dense vertex id for `(tid, idx)`: `thread_base[tid] + idx`.
    thread_base: Vec<u32>,
    /// Reverse map: vertex -> op.
    ops: Vec<OpId>,
    /// `true` for store vertices (the tsort-like tie-break prefers them).
    is_store: Vec<bool>,
    /// CSR offsets into `static_targets`; `num_vertices + 1` entries.
    static_offsets: Vec<u32>,
    /// CSR successor array (program order + fence + write-serialization
    /// chains), per-vertex sorted and deduplicated.
    static_targets: Vec<u32>,
    /// In-degree of each vertex counting static edges only — the fixed
    /// starting point every Kahn sort copies instead of recounting.
    static_indegree: Vec<u32>,
    /// For each load vertex: `(addr, own-thread candidate information)` is
    /// implicit; what we need at observe time:
    /// first store to each address per thread (for reads-init fr edges).
    first_store_per_addr_thread: Vec<Vec<Option<u32>>>,
    /// For each store (by `StoreId` index, 1-based): the vertex of its next
    /// same-address same-thread store, if any (its static ws successor).
    ws_successor: Vec<Option<u32>>,
    /// Store vertex for each `StoreId` (1-based index 0 unused).
    store_vertex: Vec<u32>,
    mcm: Mcm,
}

impl TestGraphSpec {
    /// Builds the static graph structure for `program` under `mcm`.
    pub fn new(program: &Program, mcm: Mcm) -> Self {
        let mut thread_base = Vec::with_capacity(program.num_threads());
        let mut ops = Vec::new();
        let mut is_store = Vec::new();
        let mut base = 0u32;
        for (t, code) in program.threads().iter().enumerate() {
            thread_base.push(base);
            for (i, instr) in code.iter().enumerate() {
                ops.push(OpId::new(Tid(t as u32), i as u32));
                is_store.push(instr.is_store());
            }
            base += code.len() as u32;
        }
        let n = ops.len();
        let mut static_adj: Vec<Vec<u32>> = vec![Vec::new(); n];

        // Program-order generating edges, per thread. Full fences delimit
        // segments and order against everything on both sides; partial
        // (store-store / load-load) fences live inside segments,
        // transparent to the per-MCM chains, with their own kind-restricted
        // edges. Within a segment the chains' transitive closure is exactly
        // `mcm.orders` over memory operations.
        for (t, code) in program.threads().iter().enumerate() {
            let tb = thread_base[t];
            let is_full_fence = |j: usize| matches!(code[j], Instr::Fence(FenceKind::Full));
            let mut segment_start = 0usize;
            let mut i = 0usize;
            while i <= code.len() {
                let at_fence = i < code.len() && is_full_fence(i);
                let at_end = i == code.len();
                if at_fence || at_end {
                    add_segment_edges(&mut static_adj, code, tb, segment_start, i, mcm);
                    add_partial_fence_edges(&mut static_adj, code, tb, segment_start, i);
                    if at_fence {
                        let f = tb + i as u32;
                        for j in segment_start..i {
                            static_adj[(tb + j as u32) as usize].push(f);
                        }
                        // Connect the fence to each op until the next full
                        // fence (partial fences included: they order with
                        // the full fence too).
                        let mut k = i + 1;
                        while k < code.len() && !is_full_fence(k) {
                            static_adj[f as usize].push(tb + k as u32);
                            k += 1;
                        }
                        // Consecutive full fences order each other.
                        if k < code.len() {
                            static_adj[f as usize].push(tb + k as u32);
                        }
                        segment_start = i + 1;
                    }
                }
                i += 1;
            }
        }

        // Observed-edge support tables.
        let num_addrs = program.num_addrs() as usize;
        let mut first_store_per_addr_thread = vec![vec![None; program.num_threads()]; num_addrs];
        let mut store_vertex = vec![0u32; program.num_stores() + 1];
        let mut ws_successor = vec![None; program.num_stores() + 1];
        // `prev_store[addr][thread]` tracks the latest store seen so far,
        // yielding the intra-thread write-serialization chain.
        let mut prev_store: Vec<Vec<Option<mtc_isa::StoreId>>> =
            vec![vec![None; program.num_threads()]; num_addrs];
        for (op, id) in program.stores() {
            let v = thread_base[op.tid.index()] + op.idx;
            store_vertex[id.0 as usize] = v;
            let a = program
                .instr(op)
                .and_then(Instr::addr)
                .expect("stores carry addresses")
                .index();
            let t = op.tid.index();
            if first_store_per_addr_thread[a][t].is_none() {
                first_store_per_addr_thread[a][t] = Some(v);
            }
            if let Some(prev) = prev_store[a][t] {
                ws_successor[prev.0 as usize] = Some(v);
            }
            prev_store[a][t] = Some(id);
        }

        // Flatten the per-vertex builder lists into CSR form.
        let mut static_offsets = Vec::with_capacity(n + 1);
        let mut static_targets = Vec::with_capacity(static_adj.iter().map(Vec::len).sum());
        static_offsets.push(0u32);
        for adj in &mut static_adj {
            adj.sort_unstable();
            adj.dedup();
            static_targets.extend_from_slice(adj);
            static_offsets.push(static_targets.len() as u32);
        }
        let mut static_indegree = vec![0u32; n];
        for &w in &static_targets {
            static_indegree[w as usize] += 1;
        }
        TestGraphSpec {
            thread_base,
            ops,
            is_store,
            static_offsets,
            static_targets,
            static_indegree,
            first_store_per_addr_thread,
            ws_successor,
            store_vertex,
            mcm,
        }
    }

    /// Number of vertices (all instructions, fences included).
    pub fn num_vertices(&self) -> usize {
        self.ops.len()
    }

    /// Number of static edges.
    pub fn num_static_edges(&self) -> usize {
        self.static_targets.len()
    }

    /// The MCM the static edges encode.
    pub fn mcm(&self) -> Mcm {
        self.mcm
    }

    /// Dense vertex id of `op`.
    pub fn vertex(&self, op: OpId) -> u32 {
        self.thread_base[op.tid.index()] + op.idx
    }

    /// The op at vertex `v`.
    pub fn op(&self, v: u32) -> OpId {
        self.ops[v as usize]
    }

    /// Returns `true` when vertex `v` is a store (tie-break support).
    pub fn is_store(&self, v: u32) -> bool {
        self.is_store[v as usize]
    }

    /// Static out-neighbours of `v` (a contiguous CSR slice).
    pub fn static_successors(&self, v: u32) -> &[u32] {
        let lo = self.static_offsets[v as usize] as usize;
        let hi = self.static_offsets[v as usize + 1] as usize;
        &self.static_targets[lo..hi]
    }

    /// Per-vertex in-degrees over the static edges alone.
    pub(crate) fn static_indegree(&self) -> &[u32] {
        &self.static_indegree
    }

    /// Builds the observed (rf + fr) edges for one execution.
    ///
    /// * rf: producing store → load, for inter-thread reads (intra-thread
    ///   reads only when [`CheckOptions::intra_thread_rf`] is set);
    /// * fr: load → the static ws-successor of the store it read — the
    ///   intra-thread store chains propagate the ordering to everything
    ///   later; a load of the initial value precedes every store to that
    ///   address, captured by edges to each thread's first store.
    pub fn observe(
        &self,
        program: &Program,
        rf: &ReadsFrom,
        options: &CheckOptions,
    ) -> ObservedEdges {
        let mut edges = Vec::with_capacity(rf.len() * 2);
        for (load, value) in rf.iter() {
            let addr = program
                .instr(load)
                .and_then(Instr::addr)
                .expect("reads-from keys are loads");
            self.append_load_edges(load, addr, value, options, &mut edges);
        }
        ObservedEdges::from_raw(edges)
    }

    /// Appends the observed edges one `(load, value)` observation
    /// contributes (see [`observe`](Self::observe)) to `out`. The edge set
    /// for a given pair is fixed by the spec, which lets callers
    /// precompute per-candidate edge lists and skip `ReadsFrom`
    /// materialization on the decode hot path.
    pub fn append_load_edges(
        &self,
        load: OpId,
        addr: mtc_isa::Addr,
        value: mtc_isa::Value,
        options: &CheckOptions,
        out: &mut Vec<(u32, u32)>,
    ) {
        let lv = self.vertex(load);
        match value.store_id() {
            None => {
                // Read the initial value: fr to every thread's first
                // store on this address.
                for first in self.first_store_per_addr_thread[addr.index()]
                    .iter()
                    .flatten()
                {
                    out.push((lv, *first));
                }
            }
            Some(id) => {
                let sv = self.store_vertex[id.0 as usize];
                let store_op = self.op(sv);
                if store_op.tid != load.tid || options.intra_thread_rf {
                    out.push((sv, lv));
                }
                if let Some(succ) = self.ws_successor[id.0 as usize] {
                    out.push((lv, succ));
                }
            }
        }
    }
}

fn add_segment_edges(
    static_adj: &mut [Vec<u32>],
    code: &[Instr],
    tb: u32,
    start: usize,
    end: usize,
    mcm: Mcm,
) {
    match mcm {
        Mcm::Sc => {
            // Consecutive chain over memory operations; partial fences are
            // transparent (their kind-restricted edges are added
            // separately, and SC does not order uncovered accesses against
            // them).
            let mut prev_mem: Option<u32> = None;
            #[allow(clippy::needless_range_loop)]
            for j in start..end {
                if code[j].is_fence() {
                    continue;
                }
                let v = tb + j as u32;
                if let Some(p) = prev_mem {
                    static_adj[p as usize].push(v);
                }
                prev_mem = Some(v);
            }
        }
        Mcm::Tso => {
            // Generating set whose transitive closure is exactly the TSO
            // order (everything but st->ld): each load orders before the
            // next op and the next load; each store before the next store.
            let mut next_store: Option<u32> = None;
            let mut next_load: Option<u32> = None;
            let mut next_mem: Option<u32> = None;
            for j in (start..end).rev() {
                let v = tb + j as u32;
                match code[j] {
                    Instr::Load { .. } => {
                        if let Some(nm) = next_mem {
                            static_adj[v as usize].push(nm);
                        }
                        if let Some(nl) = next_load {
                            static_adj[v as usize].push(nl);
                        }
                        next_load = Some(v);
                        next_mem = Some(v);
                    }
                    Instr::Store { .. } => {
                        if let Some(ns) = next_store {
                            static_adj[v as usize].push(ns);
                        }
                        next_store = Some(v);
                        next_mem = Some(v);
                    }
                    // Partial fences are transparent to the TSO chains;
                    // their kind-restricted edges are added separately.
                    Instr::Fence(_) => {}
                }
            }
        }
        Mcm::Weak => {
            // Per-address coherence chains only: each load orders before
            // the next same-address op and the next same-address load; each
            // store before the next same-address store (st->ld forwards).
            let mut next_store_of_addr: std::collections::HashMap<u32, u32> =
                std::collections::HashMap::new();
            let mut next_load_of_addr: std::collections::HashMap<u32, u32> =
                std::collections::HashMap::new();
            let mut next_op_of_addr: std::collections::HashMap<u32, u32> =
                std::collections::HashMap::new();
            for j in (start..end).rev() {
                let v = tb + j as u32;
                let Some(addr) = code[j].addr() else { continue };
                match code[j] {
                    Instr::Load { .. } => {
                        if let Some(&n) = next_op_of_addr.get(&addr.0) {
                            static_adj[v as usize].push(n);
                        }
                        if let Some(&nl) = next_load_of_addr.get(&addr.0) {
                            static_adj[v as usize].push(nl);
                        }
                        next_load_of_addr.insert(addr.0, v);
                    }
                    Instr::Store { .. } => {
                        if let Some(&ns) = next_store_of_addr.get(&addr.0) {
                            static_adj[v as usize].push(ns);
                        }
                        next_store_of_addr.insert(addr.0, v);
                    }
                    Instr::Fence(_) => unreachable!("segments are fence-free"),
                }
                next_op_of_addr.insert(addr.0, v);
            }
        }
    }
}

/// Adds the kind-restricted edges of partial fences within one
/// full-fence-free segment: a store-store barrier orders every earlier
/// store (and fence) in the segment before it and itself before every
/// later store (and fence); load-load barriers symmetrically for loads.
fn add_partial_fence_edges(
    static_adj: &mut [Vec<u32>],
    code: &[Instr],
    tb: u32,
    start: usize,
    end: usize,
) {
    for j in start..end {
        let Instr::Fence(kind) = code[j] else {
            continue;
        };
        debug_assert_ne!(kind, FenceKind::Full, "full fences delimit segments");
        let f = tb + j as u32;
        for k in start..j {
            if kind.orders_with(&code[k]) {
                static_adj[(tb + k as u32) as usize].push(f);
            }
        }
        #[allow(clippy::needless_range_loop)]
        for k in (j + 1)..end {
            if kind.orders_with(&code[k]) {
                static_adj[f as usize].push(tb + k as u32);
            }
        }
    }
}

/// The per-execution observed edges (rf + fr), sorted and deduplicated.
#[derive(Clone, Debug, Default, Eq, PartialEq, Ord, PartialOrd, Hash, Serialize, Deserialize)]
pub struct ObservedEdges {
    edges: Vec<(u32, u32)>,
}

impl ObservedEdges {
    /// Canonicalizes raw observation pairs: sorted, deduplicated, and with
    /// self-loops dropped (a store can never be its own successor, but
    /// stay defensive against intra-thread options).
    fn canonicalize(edges: &mut Vec<(u32, u32)>) {
        edges.sort_unstable();
        edges.dedup();
        edges.retain(|&(u, v)| u != v);
    }

    /// Builds the set from raw (possibly duplicated, unsorted) pairs as
    /// produced by [`TestGraphSpec::append_load_edges`].
    pub fn from_raw(mut edges: Vec<(u32, u32)>) -> Self {
        Self::canonicalize(&mut edges);
        ObservedEdges { edges }
    }

    /// Replaces this set's contents with the canonicalized `raw` pairs,
    /// reusing both allocations — the per-signature path of the collective
    /// checker rebuilds one `ObservedEdges` millions of times.
    pub fn assign_from_raw(&mut self, raw: &mut Vec<(u32, u32)>) {
        Self::canonicalize(raw);
        self.edges.clear();
        self.edges.extend_from_slice(raw);
    }

    /// [`assign_from_raw`](Self::assign_from_raw) by bucketed counting sort:
    /// pairs are scattered into per-source buckets (`O(V + E)`), each tiny
    /// bucket sorted by target, then written out deduplicated and without
    /// self-loops — the same canonical form as the comparison-sort path,
    /// without its `O(E log E)` cost. All working memory lives in `scratch`,
    /// so per-signature checking stays allocation-free.
    pub fn assign_from_raw_bucketed(
        &mut self,
        raw: &[(u32, u32)],
        num_vertices: usize,
        scratch: &mut EdgeScratch,
    ) {
        let offsets = &mut scratch.offsets;
        offsets.clear();
        offsets.resize(num_vertices, 0);
        for &(u, _) in raw {
            offsets[u as usize] += 1;
        }
        let mut sum = 0u32;
        for slot in offsets.iter_mut() {
            let count = *slot;
            *slot = sum;
            sum += count;
        }
        let tmp = &mut scratch.tmp;
        tmp.clear();
        tmp.resize(raw.len(), (0, 0));
        for &edge in raw {
            let slot = &mut offsets[edge.0 as usize];
            tmp[*slot as usize] = edge;
            *slot += 1;
        }
        // After the scatter `offsets[u]` is the *end* of bucket `u`.
        self.edges.clear();
        let mut start = 0usize;
        for &end in offsets.iter() {
            let bucket = &mut tmp[start..end as usize];
            bucket.sort_unstable_by_key(|&(_, v)| v);
            let mut prev = None;
            for &edge in bucket.iter() {
                if edge.0 != edge.1 && prev != Some(edge) {
                    self.edges.push(edge);
                    prev = Some(edge);
                }
            }
            start = end as usize;
        }
    }

    /// The sorted `(from, to)` vertex pairs.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Number of observed edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` when the execution observed nothing (no loads).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Out-neighbours of `u` among the observed edges.
    pub fn successors(&self, u: u32) -> impl Iterator<Item = u32> + '_ {
        let start = self.edges.partition_point(|&(a, _)| a < u);
        self.edges[start..]
            .iter()
            .take_while(move |&&(a, _)| a == u)
            .map(|&(_, b)| b)
    }

    /// Edges present in `self` but not in `other` (both are sorted).
    pub fn difference<'a>(
        &'a self,
        other: &'a ObservedEdges,
    ) -> impl Iterator<Item = (u32, u32)> + 'a {
        let mut oi = 0usize;
        self.edges.iter().copied().filter(move |e| {
            while oi < other.edges.len() && other.edges[oi] < *e {
                oi += 1;
            }
            !(oi < other.edges.len() && other.edges[oi] == *e)
        })
    }
}

/// Reusable buffers for [`ObservedEdges::assign_from_raw_bucketed`]: the
/// per-source bucket offsets and the scatter target.
#[derive(Clone, Debug, Default)]
pub struct EdgeScratch {
    offsets: Vec<u32>,
    tmp: Vec<(u32, u32)>,
}

impl FromIterator<(u32, u32)> for ObservedEdges {
    fn from_iter<I: IntoIterator<Item = (u32, u32)>>(iter: I) -> Self {
        let mut edges: Vec<(u32, u32)> = iter.into_iter().collect();
        edges.sort_unstable();
        edges.dedup();
        ObservedEdges { edges }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtc_isa::{litmus, Addr, MemoryLayout, ProgramBuilder, Value};

    fn sb_spec(mcm: Mcm) -> (mtc_isa::Program, TestGraphSpec) {
        let t = litmus::store_buffering();
        let spec = TestGraphSpec::new(&t.program, mcm);
        (t.program, spec)
    }

    #[test]
    fn vertices_cover_all_instructions() {
        let (p, spec) = sb_spec(Mcm::Tso);
        assert_eq!(spec.num_vertices(), p.num_instrs());
        for (op, _) in p.iter_ops() {
            assert_eq!(spec.op(spec.vertex(op)), op);
        }
    }

    #[test]
    fn tso_po_edges_relax_store_load() {
        let (_, spec) = sb_spec(Mcm::Tso);
        // Thread 0: st X (v0), ld Y (v1). TSO: no st->ld edge.
        assert!(spec.static_successors(0).is_empty());
        assert_eq!(spec.num_static_edges(), 0);
        let (_, sc_spec) = sb_spec(Mcm::Sc);
        assert_eq!(sc_spec.num_static_edges(), 2);
    }

    #[test]
    fn tso_store_chain_skips_loads() {
        // st A; ld B; st C: TSO needs st->st and ld->next.
        let mut b = ProgramBuilder::new(3, MemoryLayout::no_false_sharing());
        b.thread(0).store(Addr(0)).load(Addr(1)).store(Addr(2));
        let p = b.build().unwrap();
        let spec = TestGraphSpec::new(&p, Mcm::Tso);
        assert_eq!(spec.static_successors(0), &[2], "st->st chain");
        assert_eq!(spec.static_successors(1), &[2], "ld orders with next");
    }

    #[test]
    fn weak_only_orders_same_address() {
        let mut b = ProgramBuilder::new(2, MemoryLayout::no_false_sharing());
        b.thread(0)
            .load(Addr(0))
            .store(Addr(1))
            .load(Addr(0))
            .store(Addr(0));
        let p = b.build().unwrap();
        let spec = TestGraphSpec::new(&p, Mcm::Weak);
        // v0 (ld A) -> v2 (ld A): same-address chain; nothing to v1.
        assert_eq!(spec.static_successors(0), &[2]);
        assert!(
            spec.static_successors(1).is_empty(),
            "st B unordered (st->ld relaxed)"
        );
        // v2 (ld A) -> v3 (st A).
        assert_eq!(spec.static_successors(2), &[3]);
    }

    #[test]
    fn fences_order_across_segments() {
        let t = litmus::store_buffering_fenced();
        let spec = TestGraphSpec::new(&t.program, Mcm::Weak);
        // Thread 0: st X (0), fence (1), ld Y (2): st->fence->ld.
        assert_eq!(spec.static_successors(0), &[1]);
        assert_eq!(spec.static_successors(1), &[2]);
    }

    #[test]
    fn observe_builds_rf_and_fr() {
        // T0: st X. T1: ld X, ld X.
        let t = litmus::corr();
        let p = &t.program;
        let spec = TestGraphSpec::new(p, Mcm::Tso);
        let mut rf = ReadsFrom::new();
        rf.record(OpId::new(Tid(1), 0), Value(1)); // reads the store
        rf.record(OpId::new(Tid(1), 1), Value::INIT); // then init: violation shape
        let obs = spec.observe(p, &rf, &CheckOptions::default());
        let sv = spec.vertex(OpId::new(Tid(0), 0));
        let l1 = spec.vertex(OpId::new(Tid(1), 0));
        let l2 = spec.vertex(OpId::new(Tid(1), 1));
        assert!(obs.edges().contains(&(sv, l1)), "rf edge");
        assert!(obs.edges().contains(&(l2, sv)), "fr-from-init edge");
        assert_eq!(obs.successors(l2).collect::<Vec<_>>(), vec![sv]);
    }

    #[test]
    fn intra_thread_rf_is_dropped_by_default() {
        let mut b = ProgramBuilder::new(1, MemoryLayout::no_false_sharing());
        b.thread(0).store(Addr(0)).load(Addr(0));
        let p = b.build().unwrap();
        let spec = TestGraphSpec::new(&p, Mcm::Tso);
        let mut rf = ReadsFrom::new();
        rf.record(OpId::new(Tid(0), 1), Value(1));
        let default = spec.observe(&p, &rf, &CheckOptions::default());
        assert!(
            default.is_empty(),
            "intra-thread rf dropped, no ws successor"
        );
        let with = spec.observe(
            &p,
            &rf,
            &CheckOptions {
                intra_thread_rf: true,
            },
        );
        assert_eq!(with.edges(), &[(0, 1)]);
    }

    #[test]
    fn fr_uses_ws_successor() {
        // T0: st X (#1); st X (#2). T1: ld X.
        let mut b = ProgramBuilder::new(1, MemoryLayout::no_false_sharing());
        b.thread(0).store(Addr(0)).store(Addr(0));
        b.thread(1).load(Addr(0));
        let p = b.build().unwrap();
        let spec = TestGraphSpec::new(&p, Mcm::Tso);
        let mut rf = ReadsFrom::new();
        rf.record(OpId::new(Tid(1), 0), Value(1));
        let obs = spec.observe(&p, &rf, &CheckOptions::default());
        // rf #1 -> load, fr load -> #2.
        assert_eq!(obs.edges(), &[(0, 2), (2, 1)]);
    }

    #[test]
    fn observe_is_deterministic_and_bounded() {
        use mtc_gen::{generate, TestConfig};
        use mtc_isa::IsaKind;
        let test = TestConfig::new(IsaKind::Arm, 4, 40, 8).with_seed(2);
        let p = generate(&test);
        let spec = TestGraphSpec::new(&p, Mcm::Weak);
        // A synthetic observation: every load reads its own-thread value.
        let rf: ReadsFrom = p
            .loads()
            .map(|l| {
                let v = p
                    .last_own_store_before(l)
                    .map_or(Value::INIT, |(_, id)| Value::from(id));
                (l, v)
            })
            .collect();
        let a = spec.observe(&p, &rf, &CheckOptions::default());
        let b = spec.observe(&p, &rf, &CheckOptions::default());
        assert_eq!(a, b, "observe must be deterministic");
        // Observed edges stay compact: at most (threads + 1) per load.
        assert!(a.len() <= p.num_loads() * (p.num_threads() + 1));
    }

    #[test]
    fn bucketed_canonicalization_matches_sorting() {
        let cases: &[&[(u32, u32)]] = &[
            &[],
            &[(0, 0)],
            &[(3, 1), (3, 1), (0, 2), (3, 0), (1, 1), (2, 3), (0, 2)],
            &[(5, 4), (5, 6), (5, 4), (4, 5), (0, 5), (6, 6), (0, 1)],
        ];
        let mut scratch = EdgeScratch::default();
        for raw in cases {
            let expected = ObservedEdges::from_raw(raw.to_vec());
            let mut bucketed = ObservedEdges::default();
            bucketed.assign_from_raw_bucketed(raw, 7, &mut scratch);
            assert_eq!(bucketed, expected, "raw {raw:?}");
            // Scratch reuse must not leak state between calls.
            bucketed.assign_from_raw_bucketed(raw, 7, &mut scratch);
            assert_eq!(bucketed, expected, "raw {raw:?} (reused scratch)");
        }
    }

    #[test]
    fn edge_difference() {
        let a: ObservedEdges = [(0, 1), (1, 2), (3, 4)].into_iter().collect();
        let b: ObservedEdges = [(1, 2), (4, 5)].into_iter().collect();
        let diff: Vec<_> = a.difference(&b).collect();
        assert_eq!(diff, vec![(0, 1), (3, 4)]);
        assert_eq!(b.difference(&a).collect::<Vec<_>>(), vec![(4, 5)]);
        assert_eq!(a.difference(&a).count(), 0);
    }
}

#[cfg(test)]
mod closure_tests {
    use super::*;
    use mtc_gen::{generate, TestConfig};
    use mtc_isa::IsaKind;
    use proptest::prelude::*;

    /// Computes intra-thread reachability over the static edges.
    #[allow(clippy::needless_range_loop)]
    fn reachable(spec: &TestGraphSpec, n: usize) -> Vec<Vec<bool>> {
        let mut reach = vec![vec![false; n]; n];
        for v in 0..n {
            for &w in spec.static_successors(v as u32) {
                reach[v][w as usize] = true;
            }
        }
        for k in 0..n {
            for i in 0..n {
                if reach[i][k] {
                    for j in 0..n {
                        if reach[k][j] {
                            reach[i][j] = true;
                        }
                    }
                }
            }
        }
        reach
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The static generating edges are exact: their transitive closure
        /// restricted to same-thread *memory* operations equals the
        /// transitive closure of `Mcm::orders` — no missing orderings
        /// (false negatives in program order) and no invented ones (false
        /// positives), across all three models and fence kinds.
        #[test]
        #[allow(clippy::needless_range_loop)]
        fn static_edges_close_to_exactly_the_mcm_order(
            seed in any::<u64>(),
            ops in 2u32..14,
            addrs in 1u32..4,
            fence_fraction in 0.0f64..0.5,
            mcm in prop::sample::select(vec![Mcm::Sc, Mcm::Tso, Mcm::Weak]),
        ) {
            let test = TestConfig::new(IsaKind::Arm, 1, ops, addrs)
                .with_seed(seed)
                .with_fence_fraction(fence_fraction)
                .with_mcm(mcm);
            let program = generate(&test);
            let spec = TestGraphSpec::new(&program, mcm);
            let n = spec.num_vertices();
            let reach = reachable(&spec, n);

            // Expected relation: transitive closure of the pairwise
            // `orders` predicate over the thread's instructions.
            let code = &program.threads()[0];
            let mut expect = vec![vec![false; n]; n];
            for i in 0..n {
                for j in (i + 1)..n {
                    expect[i][j] = mcm.orders(&code[i], &code[j]);
                }
            }
            for k in 0..n {
                for i in 0..n {
                    if expect[i][k] {
                        for j in 0..n {
                            if expect[k][j] {
                                expect[i][j] = true;
                            }
                        }
                    }
                }
            }

            for i in 0..n {
                for j in 0..n {
                    // Compare only memory-op pairs: fence vertices are
                    // ordering devices whose own placement may be more
                    // constrained by the edge realization than the pairwise
                    // predicate requires.
                    if !code[i].is_memory() || !code[j].is_memory() {
                        continue;
                    }
                    prop_assert_eq!(
                        reach[i][j],
                        expect[i][j],
                        "{}: {} ({}) -> {} ({}): edges say {}, orders say {}",
                        mcm, i, code[i], j, code[j], reach[i][j], expect[i][j]
                    );
                }
            }
        }
    }
}
