//! Collective constraint-graph checking (§4.2) — the paper's second
//! contribution.
//!
//! Executions are presented in ascending signature order, so consecutive
//! graphs differ in few observed edges. The checker keeps the topological
//! order of the last *valid* graph; for each next graph it diffs the
//! observed edges, finds the new edges that point backwards under the
//! current order, and re-sorts only the window of positions between the
//! leading and trailing boundary (the first and last vertex adjacent to a
//! new backward edge). No new backward edges means the graph is valid with
//! zero sorting work. The window re-sort is exactly as precise as a full
//! sort: every cycle must contain a new backward edge, and any path closing
//! a cycle moves strictly forward in the old order, so it cannot leave the
//! window.

use crate::topo::{extract_cycle, full_sort_into, violation_from_cycle, ObsAdj, SortScratch};
use crate::{Certificate, DeltaObservations, ObservedEdges, TestGraphSpec, Violation};
use serde::{Deserialize, Serialize};
use std::borrow::Borrow;
use std::fmt;

/// Breakdown of how much re-sorting the collective checker performed —
/// the data behind Figure 14.
#[derive(Copy, Clone, Debug, Default, Eq, PartialEq, Serialize, Deserialize)]
pub struct CollectiveStats {
    /// Graphs checked in total.
    pub graphs: usize,
    /// Graphs requiring a complete sort (the first graph, and recovery
    /// after a violating graph).
    pub complete: usize,
    /// Graphs accepted with no re-sorting (no new backward edges).
    pub no_resort: usize,
    /// Graphs checked by incremental window re-sorting.
    pub incremental: usize,
    /// Vertices re-sorted across all incremental checks.
    pub resorted_vertices: u64,
    /// Total vertices across incremental graphs (denominator for the
    /// affected-vertex percentage of Figure 14).
    pub incremental_vertices: u64,
    /// Violating graphs.
    pub violations: usize,
    /// Vertices visited plus edges traversed (comparable with
    /// [`CheckStats::work`](crate::CheckStats)).
    pub work: u64,
}

impl CollectiveStats {
    /// Sums two stats breakdowns field for field.
    ///
    /// Every counter is additive, and each independently checked span of
    /// graphs satisfies the Figure 14 identity
    /// `complete + no_resort + incremental == graphs` on its own — so the
    /// merged stats satisfy it too. This is the reduction step of
    /// [`check_collective_chunked`].
    pub fn merge(&self, other: &CollectiveStats) -> CollectiveStats {
        CollectiveStats {
            graphs: self.graphs + other.graphs,
            complete: self.complete + other.complete,
            no_resort: self.no_resort + other.no_resort,
            incremental: self.incremental + other.incremental,
            resorted_vertices: self.resorted_vertices + other.resorted_vertices,
            incremental_vertices: self.incremental_vertices + other.incremental_vertices,
            violations: self.violations + other.violations,
            work: self.work + other.work,
        }
    }

    /// Fraction of incremental graphs' vertices that needed re-sorting.
    pub fn affected_vertex_fraction(&self) -> f64 {
        if self.incremental_vertices == 0 {
            return 0.0;
        }
        self.resorted_vertices as f64 / self.incremental_vertices as f64
    }

    /// Fraction of graphs accepted without any re-sorting.
    pub fn no_resort_fraction(&self) -> f64 {
        if self.graphs == 0 {
            return 0.0;
        }
        self.no_resort as f64 / self.graphs as f64
    }
}

/// Outcome of a collective checking pass.
#[derive(Clone, Debug, Default)]
pub struct CollectiveOutcome {
    /// Per-graph results, in input order.
    pub results: Vec<Result<(), Violation>>,
    /// Re-sorting breakdown and work counters.
    pub stats: CollectiveStats,
}

impl CollectiveOutcome {
    /// Number of violating graphs.
    pub fn violation_count(&self) -> usize {
        self.results.iter().filter(|r| r.is_err()).count()
    }
}

/// Checks a sequence of executions collectively.
///
/// `observations` must be ordered so that neighbours are similar — in
/// MTraceCheck, ascending execution-signature order (§4.1); the checker is
/// correct for any order but fast only for a similarity-preserving one.
///
/// This is the paper-faithful variant: one re-sorting window from the
/// leading to the trailing boundary. See [`check_collective_split`] for the
/// interval-splitting optimization.
pub fn check_collective(spec: &TestGraphSpec, observations: &[ObservedEdges]) -> CollectiveOutcome {
    check_collective_with(spec, observations, false)
}

/// Collective checking with split re-sorting windows — an optimization
/// beyond §4.2.
///
/// The paper re-sorts the single span from the first to the last vertex
/// adjacent to a new backward edge; when backward edges cluster in distant
/// regions, that one window covers mostly-untouched vertices. Merging each
/// backward edge's position interval and re-sorting the resulting disjoint
/// intervals independently is equally precise: every cycle contains a new
/// backward edge, forward edges only increase positions, and any backward
/// edge bridging two intervals would have merged them — so a cycle can
/// never span disjoint intervals.
pub fn check_collective_split(
    spec: &TestGraphSpec,
    observations: &[ObservedEdges],
) -> CollectiveOutcome {
    check_collective_with(spec, observations, true)
}

/// Splits `len` items into at most `chunks` contiguous, near-equal,
/// non-empty chunk lengths (earlier chunks take the remainder). This is the
/// chunk plan [`check_collective_chunked`] uses; it is exposed so callers
/// can reproduce the identical plan serially via
/// [`check_collective_with_boundaries`].
pub fn even_chunk_lengths(len: usize, chunks: usize) -> Vec<usize> {
    let chunks = chunks.max(1).min(len.max(1));
    let base = len / chunks;
    let remainder = len % chunks;
    (0..chunks)
        .map(|i| base + usize::from(i < remainder))
        .collect()
}

/// Collective checking over explicit contiguous chunks, serially.
///
/// Each chunk is checked independently — its first graph re-seeds the
/// checker with a complete topological sort — and the per-chunk stats are
/// summed with [`CollectiveStats::merge`]. Per-graph verdicts are *exactly*
/// those of the unchunked checker for any boundary placement: a graph's
/// verdict depends only on its own constraint graph, never on the checker's
/// incremental state. Only the stats breakdown shifts (one extra `complete`
/// sort per extra chunk).
///
/// # Panics
///
/// Panics when `lengths` does not sum to `observations.len()`.
pub fn check_collective_with_boundaries(
    spec: &TestGraphSpec,
    observations: &[ObservedEdges],
    lengths: &[usize],
    split_windows: bool,
) -> CollectiveOutcome {
    assert_eq!(
        lengths.iter().sum::<usize>(),
        observations.len(),
        "chunk lengths must partition the observations"
    );
    let mut outcome = CollectiveOutcome::default();
    let mut start = 0;
    for &len in lengths {
        let chunk = check_collective_with(spec, &observations[start..start + len], split_windows);
        outcome.results.extend(chunk.results);
        outcome.stats = outcome.stats.merge(&chunk.stats);
        start += len;
    }
    outcome
}

/// Collective checking sharded into `chunks` contiguous near-equal chunks,
/// one scoped host thread per chunk.
///
/// Equal to [`check_collective_with_boundaries`] over
/// [`even_chunk_lengths`]`(observations.len(), chunks)` — results in input
/// order, stats summed — regardless of thread scheduling. Callers bound
/// `chunks` by their worker budget; the function never spawns more threads
/// than chunks.
///
/// # Errors
///
/// [`CheckError::WorkerPanic`] when a chunk worker panics: the panic is
/// contained to this call instead of aborting the process, so the caller
/// can degrade (retry, quarantine) the affected test.
pub fn check_collective_chunked(
    spec: &TestGraphSpec,
    observations: &[ObservedEdges],
    chunks: usize,
    split_windows: bool,
) -> Result<CollectiveOutcome, CheckError> {
    let lengths = even_chunk_lengths(observations.len(), chunks);
    if lengths.len() <= 1 {
        return Ok(check_collective_with(spec, observations, split_windows));
    }
    let mut slices = Vec::with_capacity(lengths.len());
    let mut start = 0;
    for &len in &lengths {
        slices.push(&observations[start..start + len]);
        start += len;
    }
    let chunk_outcomes: Vec<CollectiveOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = slices
            .into_iter()
            .map(|slice| scope.spawn(move || check_collective_with(spec, slice, split_windows)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().map_err(|payload| CheckError::WorkerPanic {
                    payload: panic_payload(payload.as_ref()),
                })
            })
            .collect::<Result<Vec<_>, CheckError>>()
    })?;
    let mut outcome = CollectiveOutcome::default();
    for chunk in chunk_outcomes {
        outcome.results.extend(chunk.results);
        outcome.stats = outcome.stats.merge(&chunk.stats);
    }
    Ok(outcome)
}

/// A collective checking pass failed for a reason outside the memory model
/// — the graphs themselves are neither valid nor violating.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckError {
    /// A chunk worker thread panicked. The panic is contained to the
    /// checking call so the campaign can degrade the affected test instead
    /// of aborting the process.
    WorkerPanic {
        /// Stringified panic payload.
        payload: String,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::WorkerPanic { payload } => {
                write!(f, "collective chunk worker panicked: {payload}")
            }
        }
    }
}

impl std::error::Error for CheckError {}

fn panic_payload(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Collective checking over a streaming iterator of observations.
///
/// This is the bounded-memory form of [`check_collective`]: the checker
/// holds only its windowed re-sort state (the last valid topological order
/// and the previous observation), never the full observation sequence, so
/// an externally merged signature stream of any length can be checked in
/// O(test size) memory. Per-graph verdicts are delivered to `on_result`
/// in input order; the returned [`CollectiveStats`] — and every verdict —
/// are identical to the slice-based checkers', which are themselves built
/// on this path.
pub fn check_collective_iter<I, F>(
    spec: &TestGraphSpec,
    observations: I,
    split_windows: bool,
    mut on_result: F,
) -> CollectiveStats
where
    I: IntoIterator,
    I::Item: Borrow<ObservedEdges>,
    F: FnMut(usize, Result<(), Violation>),
{
    let mut checker = CollectiveChecker::new(spec);
    if split_windows {
        checker = checker.with_split_windows();
    }
    for (i, obs) in observations.into_iter().enumerate() {
        on_result(i, checker.push(obs.borrow()));
    }
    *checker.stats()
}

/// Certified form of [`check_collective_iter`]: delivers each graph's
/// verdict together with the [`Certificate`] witnessing it, in input
/// order. Verdicts and [`CollectiveStats`] are identical to the
/// uncertified path by construction — both are the same
/// [`CollectiveChecker`]; the only extra work is cloning each witness.
pub fn check_collective_iter_certified<I, F>(
    spec: &TestGraphSpec,
    observations: I,
    split_windows: bool,
    mut on_result: F,
) -> CollectiveStats
where
    I: IntoIterator,
    I::Item: Borrow<ObservedEdges>,
    F: FnMut(usize, Result<(), Violation>, Certificate),
{
    let mut checker = CollectiveChecker::new(spec);
    if split_windows {
        checker = checker.with_split_windows();
    }
    for (i, obs) in observations.into_iter().enumerate() {
        let result = checker.push(obs.borrow());
        let cert = checker
            .last_certificate()
            .expect("a push always records a verdict");
        on_result(i, result, cert);
    }
    *checker.stats()
}

/// Certified form of [`check_collective`] / [`check_collective_split`]:
/// returns the outcome plus one [`Certificate`] per graph, in input order.
pub fn check_collective_certified(
    spec: &TestGraphSpec,
    observations: &[ObservedEdges],
    split_windows: bool,
) -> (CollectiveOutcome, Vec<Certificate>) {
    let mut outcome = CollectiveOutcome {
        results: Vec::with_capacity(observations.len()),
        ..CollectiveOutcome::default()
    };
    let mut certificates = Vec::with_capacity(observations.len());
    outcome.stats =
        check_collective_iter_certified(spec, observations, split_windows, |_, result, cert| {
            outcome.results.push(result);
            certificates.push(cert);
        });
    (outcome, certificates)
}

/// Certified form of [`check_collective_with_boundaries`]: identical
/// verdicts and merged stats, plus one certificate per graph.
///
/// # Panics
///
/// Panics when `lengths` does not sum to `observations.len()`.
pub fn check_collective_with_boundaries_certified(
    spec: &TestGraphSpec,
    observations: &[ObservedEdges],
    lengths: &[usize],
    split_windows: bool,
) -> (CollectiveOutcome, Vec<Certificate>) {
    assert_eq!(
        lengths.iter().sum::<usize>(),
        observations.len(),
        "chunk lengths must partition the observations"
    );
    let mut outcome = CollectiveOutcome::default();
    let mut certificates = Vec::with_capacity(observations.len());
    let mut start = 0;
    for &len in lengths {
        let (chunk, certs) =
            check_collective_certified(spec, &observations[start..start + len], split_windows);
        outcome.results.extend(chunk.results);
        certificates.extend(certs);
        outcome.stats = outcome.stats.merge(&chunk.stats);
        start += len;
    }
    (outcome, certificates)
}

/// Certified form of [`check_collective_chunked`]: one scoped thread per
/// chunk, results and certificates in input order, stats merged.
///
/// # Errors
///
/// [`CheckError::WorkerPanic`] when a chunk worker panics.
pub fn check_collective_chunked_certified(
    spec: &TestGraphSpec,
    observations: &[ObservedEdges],
    chunks: usize,
    split_windows: bool,
) -> Result<(CollectiveOutcome, Vec<Certificate>), CheckError> {
    let lengths = even_chunk_lengths(observations.len(), chunks);
    if lengths.len() <= 1 {
        return Ok(check_collective_certified(
            spec,
            observations,
            split_windows,
        ));
    }
    let mut slices = Vec::with_capacity(lengths.len());
    let mut start = 0;
    for &len in &lengths {
        slices.push(&observations[start..start + len]);
        start += len;
    }
    let chunk_outcomes: Vec<(CollectiveOutcome, Vec<Certificate>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = slices
            .into_iter()
            .map(|slice| {
                scope.spawn(move || check_collective_certified(spec, slice, split_windows))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().map_err(|payload| CheckError::WorkerPanic {
                    payload: panic_payload(payload.as_ref()),
                })
            })
            .collect::<Result<Vec<_>, CheckError>>()
    })?;
    let mut outcome = CollectiveOutcome::default();
    let mut certificates = Vec::with_capacity(observations.len());
    for (chunk, certs) in chunk_outcomes {
        outcome.results.extend(chunk.results);
        certificates.extend(certs);
        outcome.stats = outcome.stats.merge(&chunk.stats);
    }
    Ok((outcome, certificates))
}

fn check_collective_with(
    spec: &TestGraphSpec,
    observations: &[ObservedEdges],
    split_windows: bool,
) -> CollectiveOutcome {
    let mut outcome = CollectiveOutcome {
        results: Vec::with_capacity(observations.len()),
        ..CollectiveOutcome::default()
    };
    outcome.stats = check_collective_iter(spec, observations, split_windows, |_, result| {
        outcome.results.push(result);
    });
    outcome
}

/// Streaming collective checker: feed one observation at a time.
///
/// This is the online form of [`check_collective`], suitable for checking
/// signatures as they arrive from a device instead of materializing the
/// whole sequence first. Push observations in ascending-signature order for
/// the §4.1 similarity benefit; correctness does not depend on the order.
///
/// # Example
///
/// ```
/// use mtc_graph::{CheckOptions, CollectiveChecker, TestGraphSpec};
/// use mtc_isa::{litmus, Mcm, OpId, ReadsFrom, Tid, Value};
///
/// let t = litmus::corr();
/// let spec = TestGraphSpec::new(&t.program, Mcm::Tso);
/// let mut checker = CollectiveChecker::new(&spec);
/// let mut rf = ReadsFrom::new();
/// rf.record(OpId::new(Tid(1), 0), Value(1));
/// rf.record(OpId::new(Tid(1), 1), Value(1));
/// let obs = spec.observe(&t.program, &rf, &CheckOptions::default());
/// assert!(checker.push(&obs).is_ok());
/// assert_eq!(checker.stats().graphs, 1);
/// ```
#[derive(Clone, Debug)]
pub struct CollectiveChecker<'s> {
    spec: &'s TestGraphSpec,
    split_windows: bool,
    /// Current topological order and its inverse, valid for `base`.
    order: Vec<u32>,
    pos: Vec<u32>,
    /// The last observation the current order validates. Owned and
    /// overwritten in place (`clone_from`) so the per-push hot path never
    /// allocates; `has_base` distinguishes "empty base" from "no base".
    /// Unused in delta mode, where the caller's [`DeltaObservations`] *is*
    /// the base.
    base: ObservedEdges,
    has_base: bool,
    /// Whether the current base was established by [`push_delta`]
    /// (`CollectiveChecker::push_delta`); the two entry points must not be
    /// interleaved while a base is live.
    delta_base: bool,
    /// CSR view of the current observation, rebuilt per incremental
    /// [`push`](CollectiveChecker::push).
    obs_csr: ObsCsr,
    /// Reusable buffers for complete sorts and window re-sorts.
    sort_scratch: SortScratch,
    window_scratch: WindowScratch,
    /// Raw cycle of the most recent failing push, captured on the
    /// violation cold path so [`last_certificate`](Self::last_certificate)
    /// can witness FAIL verdicts without re-running extraction.
    last_cycle: Vec<u32>,
    /// Verdict of the most recent push (`None` before the first push).
    last_verdict: Option<bool>,
    stats: CollectiveStats,
}

/// Reusable buffers for the incremental path of [`CollectiveChecker`]:
/// backward-edge intervals, merged windows, and the local Kahn state of
/// [`resort_window`]. Kept across pushes so steady-state checking is
/// allocation-free.
#[derive(Clone, Debug, Default)]
struct WindowScratch {
    intervals: Vec<(u32, u32)>,
    merged: Vec<(u32, u32)>,
    indegree: Vec<u32>,
    ready_stores: ReadyBitset,
    ready_others: ReadyBitset,
    sub_order: Vec<u32>,
}

/// A pop-min set over local window indices, backed by a bitset. Equivalent
/// to a `BinaryHeap<Reverse<usize>>` that only ever holds each index once —
/// which the Kahn ready sets guarantee (a vertex's in-degree reaches zero
/// exactly once) — but with O(1) inserts and near-O(1) amortized pops
/// instead of heap sift-downs on the re-sort hot path.
#[derive(Clone, Debug, Default)]
struct ReadyBitset {
    words: Vec<u64>,
    /// No set bit lives below this word (maintained by inserts and pops).
    min_word: usize,
    len: usize,
}

impl ReadyBitset {
    fn reset(&mut self, n: usize) {
        self.words.clear();
        self.words.resize(n.div_ceil(64), 0);
        self.min_word = 0;
        self.len = 0;
    }

    fn insert(&mut self, i: usize) {
        let w = i >> 6;
        self.words[w] |= 1u64 << (i & 63);
        self.min_word = self.min_word.min(w);
        self.len += 1;
    }

    fn pop_min(&mut self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let mut w = self.min_word;
        while self.words[w] == 0 {
            w += 1;
        }
        self.min_word = w;
        let bit = self.words[w].trailing_zeros() as usize;
        self.words[w] &= self.words[w] - 1;
        self.len -= 1;
        Some((w << 6) | bit)
    }
}

/// A CSR view of one observation's edges, rebuilt per incremental push so
/// the window re-sort reads each vertex's observed successors as a
/// contiguous slice instead of binary-searching the edge list per vertex.
/// The edge list is already sorted by source, so building the view is a
/// single counting pass plus a target copy.
#[derive(Clone, Debug, Default)]
struct ObsCsr {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl ObsCsr {
    fn build(&mut self, obs: &ObservedEdges, num_vertices: usize) {
        self.offsets.clear();
        self.offsets.resize(num_vertices + 1, 0);
        for &(u, _) in obs.edges() {
            self.offsets[u as usize + 1] += 1;
        }
        for v in 0..num_vertices {
            self.offsets[v + 1] += self.offsets[v];
        }
        self.targets.clear();
        self.targets.extend(obs.edges().iter().map(|&(_, w)| w));
    }

    fn successors(&self, v: u32) -> &[u32] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.targets[lo..hi]
    }
}

impl ObsAdj for ObsCsr {
    fn for_successors<F: FnMut(u32)>(&self, v: u32, mut f: F) {
        for &w in self.successors(v) {
            f(w);
        }
    }

    fn bump_indegrees(&self, indegree: &mut [u32]) {
        for &w in &self.targets {
            indegree[w as usize] += 1;
        }
    }
}

impl<'s> CollectiveChecker<'s> {
    /// Creates a checker with the paper-faithful single re-sorting window.
    pub fn new(spec: &'s TestGraphSpec) -> Self {
        CollectiveChecker {
            spec,
            split_windows: false,
            order: Vec::new(),
            pos: vec![0; spec.num_vertices()],
            base: ObservedEdges::default(),
            has_base: false,
            delta_base: false,
            obs_csr: ObsCsr::default(),
            sort_scratch: SortScratch::default(),
            window_scratch: WindowScratch::default(),
            last_cycle: Vec::new(),
            last_verdict: None,
            stats: CollectiveStats::default(),
        }
    }

    /// Returns the checker using split re-sorting windows (see
    /// [`check_collective_split`]).
    pub fn with_split_windows(mut self) -> Self {
        self.split_windows = true;
        self
    }

    /// Work counters and the Figure 14 breakdown so far.
    pub fn stats(&self) -> &CollectiveStats {
        &self.stats
    }

    /// Checks one more execution's observed edges.
    ///
    /// # Errors
    ///
    /// Returns the dependency [`Violation`] when the execution's constraint
    /// graph is cyclic; the checker recovers on the next push with a
    /// complete sort.
    pub fn push(&mut self, obs: &ObservedEdges) -> Result<(), Violation> {
        assert!(
            !(self.has_base && self.delta_base),
            "CollectiveChecker::push must not follow push_delta while a base is live"
        );
        self.stats.graphs += 1;
        if !self.has_base {
            // First graph (or recovery): complete conventional sort.
            self.stats.complete += 1;
            return match full_sort_into(
                self.spec,
                obs,
                &mut self.stats.work,
                &mut self.sort_scratch,
            ) {
                Ok(()) => {
                    self.order.clone_from(&self.sort_scratch.order);
                    for (p, &v) in self.order.iter().enumerate() {
                        self.pos[v as usize] = p as u32;
                    }
                    self.base.clone_from(obs);
                    self.has_base = true;
                    self.delta_base = false;
                    self.last_verdict = Some(true);
                    Ok(())
                }
                Err(remaining) => {
                    self.stats.violations += 1;
                    let cycle = extract_cycle(self.spec, obs, &remaining);
                    self.last_cycle.clone_from(&cycle);
                    self.last_verdict = Some(false);
                    Err(violation_from_cycle(self.spec, cycle))
                }
            };
        }
        // Diff against the last valid observation; only new edges can
        // point backwards under a valid order.
        let mut intervals = std::mem::take(&mut self.window_scratch.intervals);
        intervals.clear();
        for (u, v) in obs.difference(&self.base) {
            self.stats.work += 1;
            if self.pos[u as usize] > self.pos[v as usize] {
                intervals.push((self.pos[v as usize], self.pos[u as usize]));
            }
        }
        if intervals.is_empty() {
            self.window_scratch.intervals = intervals;
            self.stats.no_resort += 1;
            self.base.clone_from(obs);
            self.last_verdict = Some(true);
            return Ok(());
        }
        self.stats.incremental += 1;
        self.stats.incremental_vertices += self.spec.num_vertices() as u64;
        self.obs_csr.build(obs, self.spec.num_vertices());
        let mut merged = std::mem::take(&mut self.window_scratch.merged);
        merged.clear();
        if self.split_windows {
            intervals.sort_unstable();
            for &(lo, hi) in &intervals {
                match merged.last_mut() {
                    Some((_, end)) if lo <= *end => *end = (*end).max(hi),
                    _ => merged.push((lo, hi)),
                }
            }
        } else {
            // Paper-faithful: one window from the leading to the trailing
            // boundary.
            let lead = intervals
                .iter()
                .map(|&(lo, _)| lo)
                .min()
                .expect("non-empty");
            let trail = intervals
                .iter()
                .map(|&(_, hi)| hi)
                .max()
                .expect("non-empty");
            merged.push((lead, trail));
        }
        self.window_scratch.intervals = intervals;
        let mut result = Ok(());
        for &(lead, trail) in &merged {
            if let Err(remaining) = resort_window(
                self.spec,
                &self.obs_csr,
                &mut self.order,
                &mut self.pos,
                lead as usize,
                trail as usize,
                &mut self.stats,
                &mut self.window_scratch,
            ) {
                self.stats.violations += 1;
                // The order no longer matches any valid graph; recover
                // with a complete sort on the next push (no base).
                self.has_base = false;
                let cycle = extract_cycle(self.spec, obs, &remaining);
                self.last_cycle.clone_from(&cycle);
                result = Err(violation_from_cycle(self.spec, cycle));
                break;
            }
        }
        self.window_scratch.merged = merged;
        if result.is_ok() {
            self.base.clone_from(obs);
        }
        self.last_verdict = Some(result.is_ok());
        result
    }

    /// Checks one more execution presented as a running delta.
    ///
    /// `set` must hold the execution's complete observed-edge multiset,
    /// maintained by the caller: [`DeltaObservations::begin`] once per
    /// execution, then [`add`](DeltaObservations::add) /
    /// [`remove`](DeltaObservations::remove) for the edge contributions that
    /// changed since the previous execution. This skips re-canonicalizing
    /// and re-diffing the full edge list per graph — the delta *is* the
    /// diff — and produces verdicts, cycles, and [`CollectiveStats`]
    /// identical to feeding the materialized sets through
    /// [`push`](CollectiveChecker::push).
    ///
    /// Do not interleave with [`push`](CollectiveChecker::push) while a
    /// base order is live (either entry point may seed a fresh checker or
    /// take over after a violation).
    ///
    /// # Errors
    ///
    /// Returns the dependency [`Violation`] when the execution's constraint
    /// graph is cyclic; the checker recovers on the next push with a
    /// complete sort.
    ///
    /// # Panics
    ///
    /// Panics when called while a base established by
    /// [`push`](CollectiveChecker::push) is live.
    pub fn push_delta(&mut self, set: &DeltaObservations) -> Result<(), Violation> {
        assert!(
            !self.has_base || self.delta_base,
            "CollectiveChecker::push_delta must not follow push while a base is live"
        );
        self.stats.graphs += 1;
        if !self.has_base {
            self.stats.complete += 1;
            return match full_sort_into(
                self.spec,
                set,
                &mut self.stats.work,
                &mut self.sort_scratch,
            ) {
                Ok(()) => {
                    self.order.clone_from(&self.sort_scratch.order);
                    for (p, &v) in self.order.iter().enumerate() {
                        self.pos[v as usize] = p as u32;
                    }
                    self.has_base = true;
                    self.delta_base = true;
                    self.last_verdict = Some(true);
                    Ok(())
                }
                Err(remaining) => {
                    self.stats.violations += 1;
                    let cycle = extract_cycle(self.spec, set, &remaining);
                    self.last_cycle.clone_from(&cycle);
                    self.last_verdict = Some(false);
                    Err(violation_from_cycle(self.spec, cycle))
                }
            };
        }
        // The caller's updates since the last push are the diff: edges with
        // a net absent-to-present transition are exactly `obs \ base`.
        let mut intervals = std::mem::take(&mut self.window_scratch.intervals);
        intervals.clear();
        for (u, v) in set.new_edges() {
            self.stats.work += 1;
            if self.pos[u as usize] > self.pos[v as usize] {
                intervals.push((self.pos[v as usize], self.pos[u as usize]));
            }
        }
        if intervals.is_empty() {
            self.window_scratch.intervals = intervals;
            self.stats.no_resort += 1;
            self.last_verdict = Some(true);
            return Ok(());
        }
        self.stats.incremental += 1;
        self.stats.incremental_vertices += self.spec.num_vertices() as u64;
        let mut merged = std::mem::take(&mut self.window_scratch.merged);
        merged.clear();
        if self.split_windows {
            intervals.sort_unstable();
            for &(lo, hi) in &intervals {
                match merged.last_mut() {
                    Some((_, end)) if lo <= *end => *end = (*end).max(hi),
                    _ => merged.push((lo, hi)),
                }
            }
        } else {
            let lead = intervals
                .iter()
                .map(|&(lo, _)| lo)
                .min()
                .expect("non-empty");
            let trail = intervals
                .iter()
                .map(|&(_, hi)| hi)
                .max()
                .expect("non-empty");
            merged.push((lead, trail));
        }
        self.window_scratch.intervals = intervals;
        let mut result = Ok(());
        for &(lead, trail) in &merged {
            if let Err(remaining) = resort_window(
                self.spec,
                set,
                &mut self.order,
                &mut self.pos,
                lead as usize,
                trail as usize,
                &mut self.stats,
                &mut self.window_scratch,
            ) {
                self.stats.violations += 1;
                self.has_base = false;
                let cycle = extract_cycle(self.spec, set, &remaining);
                self.last_cycle.clone_from(&cycle);
                result = Err(violation_from_cycle(self.spec, cycle));
                break;
            }
        }
        self.window_scratch.merged = merged;
        self.last_verdict = Some(result.is_ok());
        result
    }

    /// The certificate witnessing the most recent push's verdict, or
    /// `None` before any push.
    ///
    /// PASS is witnessed by the checker's current topological order — any
    /// valid topological order proves acyclicity, so the history-dependent
    /// orders the incremental paths maintain are all sound witnesses. FAIL
    /// is witnessed by the extracted cycle, captured on the violation cold
    /// path; the accepting hot path pays only a flag write, and the PASS
    /// witness is cloned on demand here.
    pub fn last_certificate(&self) -> Option<Certificate> {
        match self.last_verdict {
            None => None,
            Some(true) => Some(Certificate::Pass {
                order: self.order.clone(),
            }),
            Some(false) => Some(Certificate::Fail {
                cycle: self.last_cycle.clone(),
            }),
        }
    }
}

/// Re-sorts `order[lead..=trail]` against all current edges among the
/// window's vertices. On success the window is spliced back and `pos`
/// updated; on failure the vertices Kahn could not place are returned for
/// the caller to extract a cycle from (keeping this hot path free of the
/// cold extraction machinery). All working state lives in `scratch`,
/// reused across windows and pushes.
#[allow(clippy::too_many_arguments)]
fn resort_window<A: ObsAdj>(
    spec: &TestGraphSpec,
    obs: &A,
    order: &mut [u32],
    pos: &mut [u32],
    lead: usize,
    trail: usize,
    stats: &mut CollectiveStats,
    scratch: &mut WindowScratch,
) -> Result<(), Vec<u32>> {
    let window = &order[lead..=trail];
    let w = window.len();
    stats.resorted_vertices += w as u64;
    // The window is contiguous in positions, so membership is a range check
    // on `pos` (still valid for the pre-splice order) and the local index
    // of vertex v is `pos[v] - lead`: one compare, with positions below
    // `lead` wrapping around to huge offsets. Whether a successor is inside
    // the window is data-dependent and branch-hostile, so both passes remap
    // out-of-window edges to a sentinel in-degree slot (index `w`) instead
    // of branching: the bump pass increments it harmlessly, and it starts
    // far enough from zero that the relax pass can never drain it into the
    // ready sets.
    let width = (trail - lead) as u32;
    let indegree = &mut scratch.indegree;
    indegree.clear();
    indegree.resize(w + 1, 0);
    indegree[w] = u32::MAX / 2;
    for &v in window {
        let mut bump = |wv: u32| {
            let off = pos[wv as usize].wrapping_sub(lead as u32);
            let j = if off <= width { off as usize } else { w };
            indegree[j] += 1;
        };
        for &wv in spec.static_successors(v) {
            bump(wv);
        }
        obs.for_successors(v, bump);
    }
    // Store-first tie-break on the old position (= local index), keeping
    // the new suborder close to the old one.
    let ready_stores = &mut scratch.ready_stores;
    let ready_others = &mut scratch.ready_others;
    ready_stores.reset(w);
    ready_others.reset(w);
    for (i, &v) in window.iter().enumerate() {
        if indegree[i] == 0 {
            if spec.is_store(v) {
                ready_stores.insert(i);
            } else {
                ready_others.insert(i);
            }
        }
    }
    let sub_order = &mut scratch.sub_order;
    sub_order.clear();
    sub_order.reserve(w);
    while let Some(i) = ready_stores.pop_min().or_else(|| ready_others.pop_min()) {
        let v = window[i];
        sub_order.push(v);
        stats.work += 1;
        let mut relax = |wv: u32| {
            let off = pos[wv as usize].wrapping_sub(lead as u32);
            if off <= width {
                let j = off as usize;
                stats.work += 1;
                indegree[j] -= 1;
                if indegree[j] == 0 {
                    if spec.is_store(wv) {
                        ready_stores.insert(j);
                    } else {
                        ready_others.insert(j);
                    }
                }
            }
        };
        for &wv in spec.static_successors(v) {
            relax(wv);
        }
        obs.for_successors(v, relax);
    }
    if sub_order.len() < w {
        // Only window vertices can remain unplaced (cycles never leave the
        // window), which also restricts the caller's cycle extraction.
        return Err(window
            .iter()
            .enumerate()
            .filter(|&(i, _)| indegree[i] > 0)
            .map(|(_, &v)| v)
            .collect());
    }
    for (offset, &v) in sub_order.iter().enumerate() {
        order[lead + offset] = v;
        pos[v as usize] = (lead + offset) as u32;
    }
    Ok(())
}

/// Convenience: checks the same observations both ways and reports the
/// work ratio (collective / conventional), the Figure 9 metric.
pub fn compare_checkers(
    spec: &TestGraphSpec,
    observations: &[ObservedEdges],
) -> (CollectiveOutcome, crate::CheckOutcome, f64) {
    let collective = check_collective(spec, observations);
    let conventional = crate::check_conventional(spec, observations);
    let ratio = if conventional.stats.work == 0 {
        0.0
    } else {
        collective.stats.work as f64 / conventional.stats.work as f64
    };
    (collective, conventional, ratio)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CheckOptions;
    use mtc_isa::{litmus, Mcm, OpId, Program, ReadsFrom, Tid, Value};

    fn corr() -> (Program, TestGraphSpec) {
        let t = litmus::corr();
        let spec = TestGraphSpec::new(&t.program, Mcm::Tso);
        (t.program, spec)
    }

    fn obs(p: &Program, spec: &TestGraphSpec, reads: &[(u32, u32, u32)]) -> ObservedEdges {
        let mut rf = ReadsFrom::new();
        for &(t, i, v) in reads {
            rf.record(OpId::new(Tid(t), i), Value(v));
        }
        spec.observe(p, &rf, &CheckOptions::default())
    }

    #[test]
    fn agrees_with_conventional_on_valid_sequences() {
        let (p, spec) = corr();
        let seq = vec![
            obs(&p, &spec, &[(1, 0, 0), (1, 1, 0)]),
            obs(&p, &spec, &[(1, 0, 0), (1, 1, 1)]),
            obs(&p, &spec, &[(1, 0, 1), (1, 1, 1)]),
        ];
        let (collective, conventional, ratio) = compare_checkers(&spec, &seq);
        assert_eq!(collective.violation_count(), 0);
        assert_eq!(conventional.violation_count(), 0);
        assert!(ratio <= 1.0, "collective must not do more work ({ratio})");
        assert_eq!(collective.stats.complete, 1);
        assert_eq!(collective.stats.no_resort + collective.stats.incremental, 2);
    }

    #[test]
    fn detects_the_violating_graph_in_a_sequence() {
        let (p, spec) = corr();
        let seq = vec![
            obs(&p, &spec, &[(1, 0, 1), (1, 1, 1)]), // fine
            obs(&p, &spec, &[(1, 0, 1), (1, 1, 0)]), // anti-coherent
            obs(&p, &spec, &[(1, 0, 0), (1, 1, 1)]), // fine again
        ];
        let outcome = check_collective(&spec, &seq);
        assert!(outcome.results[0].is_ok());
        assert!(outcome.results[1].is_err());
        assert!(outcome.results[2].is_ok());
        // After a violation the checker recovers with a complete sort.
        assert_eq!(outcome.stats.complete, 2);
    }

    #[test]
    fn no_resort_when_graphs_repeat() {
        let (p, spec) = corr();
        let o = obs(&p, &spec, &[(1, 0, 1), (1, 1, 1)]);
        let seq = vec![o.clone(), o.clone(), o];
        let outcome = check_collective(&spec, &seq);
        assert_eq!(outcome.stats.no_resort, 2);
        assert_eq!(outcome.stats.resorted_vertices, 0);
    }

    #[test]
    fn empty_sequence_is_trivially_fine() {
        let (_, spec) = corr();
        let outcome = check_collective(&spec, &[]);
        assert_eq!(outcome.stats.graphs, 0);
        assert_eq!(outcome.violation_count(), 0);
    }

    #[test]
    fn streaming_checker_matches_batch() {
        let (p, spec) = corr();
        let seq = vec![
            obs(&p, &spec, &[(1, 0, 0), (1, 1, 0)]),
            obs(&p, &spec, &[(1, 0, 1), (1, 1, 0)]), // violating
            obs(&p, &spec, &[(1, 0, 1), (1, 1, 1)]),
            obs(&p, &spec, &[(1, 0, 0), (1, 1, 1)]),
        ];
        let batch = check_collective(&spec, &seq);
        let mut streaming = CollectiveChecker::new(&spec);
        for (i, o) in seq.iter().enumerate() {
            assert_eq!(
                streaming.push(o).is_ok(),
                batch.results[i].is_ok(),
                "graph {i} verdict differs"
            );
        }
        assert_eq!(*streaming.stats(), batch.stats);
    }

    #[test]
    fn split_windows_agree_with_single_window() {
        let (p, spec) = corr();
        let seq = vec![
            obs(&p, &spec, &[(1, 0, 0), (1, 1, 0)]),
            obs(&p, &spec, &[(1, 0, 1), (1, 1, 1)]),
            obs(&p, &spec, &[(1, 0, 1), (1, 1, 0)]), // violating
            obs(&p, &spec, &[(1, 0, 0), (1, 1, 1)]),
        ];
        let single = check_collective(&spec, &seq);
        let split = check_collective_split(&spec, &seq);
        for (a, b) in single.results.iter().zip(split.results.iter()) {
            assert_eq!(a.is_ok(), b.is_ok());
        }
        assert!(split.stats.resorted_vertices <= single.stats.resorted_vertices);
    }

    /// The four observable outcomes of the CoRR litmus test (one violating).
    fn corr_outcomes(p: &Program, spec: &TestGraphSpec) -> Vec<ObservedEdges> {
        vec![
            obs(p, spec, &[(1, 0, 0), (1, 1, 0)]),
            obs(p, spec, &[(1, 0, 0), (1, 1, 1)]),
            obs(p, spec, &[(1, 0, 1), (1, 1, 1)]),
            obs(p, spec, &[(1, 0, 1), (1, 1, 0)]), // anti-coherent
        ]
    }

    #[test]
    fn push_delta_matches_push() {
        let (p, spec) = corr();
        let outcomes = corr_outcomes(&p, &spec);
        // Include the violating outcome mid-sequence so the delta path also
        // exercises complete-sort recovery.
        let seq: Vec<ObservedEdges> = [0, 1, 3, 2, 0, 3, 1, 1, 2]
            .iter()
            .map(|&i| outcomes[i].clone())
            .collect();
        let mut reference = CollectiveChecker::new(&spec);
        let mut delta_checker = CollectiveChecker::new(&spec);
        let mut set = DeltaObservations::new(spec.num_vertices());
        let mut prev = ObservedEdges::default();
        for (i, o) in seq.iter().enumerate() {
            set.begin();
            for (u, v) in prev.difference(o) {
                set.remove(u, v);
            }
            for (u, v) in o.difference(&prev) {
                set.add(u, v);
            }
            prev.clone_from(o);
            assert_eq!(
                reference.push(o),
                delta_checker.push_delta(&set),
                "graph {i}"
            );
        }
        assert_eq!(reference.stats(), delta_checker.stats());
    }

    #[test]
    #[should_panic(expected = "must not follow push_delta")]
    fn mixing_push_kinds_panics() {
        let (p, spec) = corr();
        let o = obs(&p, &spec, &[(1, 0, 1), (1, 1, 1)]);
        let mut checker = CollectiveChecker::new(&spec);
        let mut set = DeltaObservations::new(spec.num_vertices());
        set.begin();
        for (u, v) in o.difference(&ObservedEdges::default()) {
            set.add(u, v);
        }
        checker.push_delta(&set).unwrap();
        let _ = checker.push(&o);
    }

    #[test]
    fn chunked_matches_boundaries_on_the_even_plan() {
        let (p, spec) = corr();
        let outcomes = corr_outcomes(&p, &spec);
        let seq: Vec<ObservedEdges> = (0..17).map(|i| outcomes[i % 4].clone()).collect();
        for chunks in [1, 2, 3, 4, 8] {
            let lengths = even_chunk_lengths(seq.len(), chunks);
            let parallel =
                check_collective_chunked(&spec, &seq, chunks, false).expect("no worker panics");
            let serial = check_collective_with_boundaries(&spec, &seq, &lengths, false);
            assert_eq!(parallel.results, serial.results, "{chunks} chunks");
            assert_eq!(parallel.stats, serial.stats, "{chunks} chunks");
        }
    }

    #[test]
    fn chunking_accounts_extra_complete_sorts() {
        let (p, spec) = corr();
        let outcomes = corr_outcomes(&p, &spec);
        let seq: Vec<ObservedEdges> = (0..12).map(|i| outcomes[i % 3].clone()).collect();
        let whole = check_collective(&spec, &seq);
        let chunked = check_collective_chunked(&spec, &seq, 4, false).expect("no worker panics");
        // Verdicts identical; each chunk re-seeds with one complete sort.
        for (a, b) in whole.results.iter().zip(chunked.results.iter()) {
            assert_eq!(a.is_ok(), b.is_ok());
        }
        assert_eq!(chunked.stats.complete, whole.stats.complete + 3);
        assert_eq!(
            chunked.stats.complete + chunked.stats.no_resort + chunked.stats.incremental,
            chunked.stats.graphs,
            "Figure 14 identity must survive chunking"
        );
    }

    #[test]
    fn even_chunk_lengths_partition() {
        assert_eq!(even_chunk_lengths(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(even_chunk_lengths(3, 8), vec![1, 1, 1]);
        assert_eq!(even_chunk_lengths(0, 4), vec![0]);
        assert_eq!(even_chunk_lengths(5, 1), vec![5]);
    }

    #[test]
    fn merge_is_fieldwise_addition() {
        let a = CollectiveStats {
            graphs: 3,
            complete: 1,
            no_resort: 1,
            incremental: 1,
            resorted_vertices: 4,
            incremental_vertices: 8,
            violations: 1,
            work: 20,
        };
        let b = CollectiveStats {
            graphs: 2,
            complete: 1,
            no_resort: 1,
            incremental: 0,
            resorted_vertices: 0,
            incremental_vertices: 0,
            violations: 0,
            work: 5,
        };
        let m = a.merge(&b);
        assert_eq!(m.graphs, 5);
        assert_eq!(m.complete + m.no_resort + m.incremental, m.graphs);
        assert_eq!(m.work, 25);
        assert_eq!(a.merge(&CollectiveStats::default()), a, "identity");
        assert_eq!(a.merge(&b), b.merge(&a), "commutative");
    }

    mod chunk_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Arbitrary chunk boundaries never change any graph's verdict,
            /// and the merged stats keep the Figure 14 identity.
            #[test]
            fn boundaries_do_not_change_verdicts(
                picks in prop::collection::vec(0usize..4, 1..40),
                cuts in prop::collection::vec(any::<usize>(), 0..6),
            ) {
                let (p, spec) = corr();
                let outcomes = corr_outcomes(&p, &spec);
                let seq: Vec<ObservedEdges> =
                    picks.iter().map(|&i| outcomes[i].clone()).collect();
                let mut bounds: Vec<usize> =
                    cuts.iter().map(|&c| c % (seq.len() + 1)).collect();
                bounds.push(0);
                bounds.push(seq.len());
                bounds.sort_unstable();
                bounds.dedup();
                let lengths: Vec<usize> =
                    bounds.windows(2).map(|w| w[1] - w[0]).collect();

                let whole = check_collective(&spec, &seq);
                let chunked =
                    check_collective_with_boundaries(&spec, &seq, &lengths, false);
                prop_assert_eq!(whole.results.len(), chunked.results.len());
                for (a, b) in whole.results.iter().zip(chunked.results.iter()) {
                    prop_assert_eq!(a.is_ok(), b.is_ok());
                }
                let s = chunked.stats;
                prop_assert_eq!(
                    s.complete + s.no_resort + s.incremental,
                    s.graphs
                );
                prop_assert_eq!(s.graphs, seq.len());
                prop_assert_eq!(s.violations, whole.stats.violations);
            }
        }
    }

    #[test]
    fn stats_fractions() {
        let mut s = CollectiveStats::default();
        assert_eq!(s.affected_vertex_fraction(), 0.0);
        assert_eq!(s.no_resort_fraction(), 0.0);
        s.graphs = 10;
        s.no_resort = 5;
        s.incremental = 4;
        s.incremental_vertices = 40;
        s.resorted_vertices = 10;
        assert_eq!(s.no_resort_fraction(), 0.5);
        assert_eq!(s.affected_vertex_fraction(), 0.25);
    }
}
