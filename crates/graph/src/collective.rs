//! Collective constraint-graph checking (§4.2) — the paper's second
//! contribution.
//!
//! Executions are presented in ascending signature order, so consecutive
//! graphs differ in few observed edges. The checker keeps the topological
//! order of the last *valid* graph; for each next graph it diffs the
//! observed edges, finds the new edges that point backwards under the
//! current order, and re-sorts only the window of positions between the
//! leading and trailing boundary (the first and last vertex adjacent to a
//! new backward edge). No new backward edges means the graph is valid with
//! zero sorting work. The window re-sort is exactly as precise as a full
//! sort: every cycle must contain a new backward edge, and any path closing
//! a cycle moves strictly forward in the old order, so it cannot leave the
//! window.

use crate::topo::{extract_cycle, full_sort, violation_from_cycle};
use crate::{ObservedEdges, TestGraphSpec, Violation};
use serde::{Deserialize, Serialize};
use std::borrow::Borrow;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Breakdown of how much re-sorting the collective checker performed —
/// the data behind Figure 14.
#[derive(Copy, Clone, Debug, Default, Eq, PartialEq, Serialize, Deserialize)]
pub struct CollectiveStats {
    /// Graphs checked in total.
    pub graphs: usize,
    /// Graphs requiring a complete sort (the first graph, and recovery
    /// after a violating graph).
    pub complete: usize,
    /// Graphs accepted with no re-sorting (no new backward edges).
    pub no_resort: usize,
    /// Graphs checked by incremental window re-sorting.
    pub incremental: usize,
    /// Vertices re-sorted across all incremental checks.
    pub resorted_vertices: u64,
    /// Total vertices across incremental graphs (denominator for the
    /// affected-vertex percentage of Figure 14).
    pub incremental_vertices: u64,
    /// Violating graphs.
    pub violations: usize,
    /// Vertices visited plus edges traversed (comparable with
    /// [`CheckStats::work`](crate::CheckStats)).
    pub work: u64,
}

impl CollectiveStats {
    /// Sums two stats breakdowns field for field.
    ///
    /// Every counter is additive, and each independently checked span of
    /// graphs satisfies the Figure 14 identity
    /// `complete + no_resort + incremental == graphs` on its own — so the
    /// merged stats satisfy it too. This is the reduction step of
    /// [`check_collective_chunked`].
    pub fn merge(&self, other: &CollectiveStats) -> CollectiveStats {
        CollectiveStats {
            graphs: self.graphs + other.graphs,
            complete: self.complete + other.complete,
            no_resort: self.no_resort + other.no_resort,
            incremental: self.incremental + other.incremental,
            resorted_vertices: self.resorted_vertices + other.resorted_vertices,
            incremental_vertices: self.incremental_vertices + other.incremental_vertices,
            violations: self.violations + other.violations,
            work: self.work + other.work,
        }
    }

    /// Fraction of incremental graphs' vertices that needed re-sorting.
    pub fn affected_vertex_fraction(&self) -> f64 {
        if self.incremental_vertices == 0 {
            return 0.0;
        }
        self.resorted_vertices as f64 / self.incremental_vertices as f64
    }

    /// Fraction of graphs accepted without any re-sorting.
    pub fn no_resort_fraction(&self) -> f64 {
        if self.graphs == 0 {
            return 0.0;
        }
        self.no_resort as f64 / self.graphs as f64
    }
}

/// Outcome of a collective checking pass.
#[derive(Clone, Debug, Default)]
pub struct CollectiveOutcome {
    /// Per-graph results, in input order.
    pub results: Vec<Result<(), Violation>>,
    /// Re-sorting breakdown and work counters.
    pub stats: CollectiveStats,
}

impl CollectiveOutcome {
    /// Number of violating graphs.
    pub fn violation_count(&self) -> usize {
        self.results.iter().filter(|r| r.is_err()).count()
    }
}

/// Checks a sequence of executions collectively.
///
/// `observations` must be ordered so that neighbours are similar — in
/// MTraceCheck, ascending execution-signature order (§4.1); the checker is
/// correct for any order but fast only for a similarity-preserving one.
///
/// This is the paper-faithful variant: one re-sorting window from the
/// leading to the trailing boundary. See [`check_collective_split`] for the
/// interval-splitting optimization.
pub fn check_collective(spec: &TestGraphSpec, observations: &[ObservedEdges]) -> CollectiveOutcome {
    check_collective_with(spec, observations, false)
}

/// Collective checking with split re-sorting windows — an optimization
/// beyond §4.2.
///
/// The paper re-sorts the single span from the first to the last vertex
/// adjacent to a new backward edge; when backward edges cluster in distant
/// regions, that one window covers mostly-untouched vertices. Merging each
/// backward edge's position interval and re-sorting the resulting disjoint
/// intervals independently is equally precise: every cycle contains a new
/// backward edge, forward edges only increase positions, and any backward
/// edge bridging two intervals would have merged them — so a cycle can
/// never span disjoint intervals.
pub fn check_collective_split(
    spec: &TestGraphSpec,
    observations: &[ObservedEdges],
) -> CollectiveOutcome {
    check_collective_with(spec, observations, true)
}

/// Splits `len` items into at most `chunks` contiguous, near-equal,
/// non-empty chunk lengths (earlier chunks take the remainder). This is the
/// chunk plan [`check_collective_chunked`] uses; it is exposed so callers
/// can reproduce the identical plan serially via
/// [`check_collective_with_boundaries`].
pub fn even_chunk_lengths(len: usize, chunks: usize) -> Vec<usize> {
    let chunks = chunks.max(1).min(len.max(1));
    let base = len / chunks;
    let remainder = len % chunks;
    (0..chunks)
        .map(|i| base + usize::from(i < remainder))
        .collect()
}

/// Collective checking over explicit contiguous chunks, serially.
///
/// Each chunk is checked independently — its first graph re-seeds the
/// checker with a complete topological sort — and the per-chunk stats are
/// summed with [`CollectiveStats::merge`]. Per-graph verdicts are *exactly*
/// those of the unchunked checker for any boundary placement: a graph's
/// verdict depends only on its own constraint graph, never on the checker's
/// incremental state. Only the stats breakdown shifts (one extra `complete`
/// sort per extra chunk).
///
/// # Panics
///
/// Panics when `lengths` does not sum to `observations.len()`.
pub fn check_collective_with_boundaries(
    spec: &TestGraphSpec,
    observations: &[ObservedEdges],
    lengths: &[usize],
    split_windows: bool,
) -> CollectiveOutcome {
    assert_eq!(
        lengths.iter().sum::<usize>(),
        observations.len(),
        "chunk lengths must partition the observations"
    );
    let mut outcome = CollectiveOutcome::default();
    let mut start = 0;
    for &len in lengths {
        let chunk = check_collective_with(spec, &observations[start..start + len], split_windows);
        outcome.results.extend(chunk.results);
        outcome.stats = outcome.stats.merge(&chunk.stats);
        start += len;
    }
    outcome
}

/// Collective checking sharded into `chunks` contiguous near-equal chunks,
/// one scoped host thread per chunk.
///
/// Equal to [`check_collective_with_boundaries`] over
/// [`even_chunk_lengths`]`(observations.len(), chunks)` — results in input
/// order, stats summed — regardless of thread scheduling. Callers bound
/// `chunks` by their worker budget; the function never spawns more threads
/// than chunks.
///
/// # Errors
///
/// [`CheckError::WorkerPanic`] when a chunk worker panics: the panic is
/// contained to this call instead of aborting the process, so the caller
/// can degrade (retry, quarantine) the affected test.
pub fn check_collective_chunked(
    spec: &TestGraphSpec,
    observations: &[ObservedEdges],
    chunks: usize,
    split_windows: bool,
) -> Result<CollectiveOutcome, CheckError> {
    let lengths = even_chunk_lengths(observations.len(), chunks);
    if lengths.len() <= 1 {
        return Ok(check_collective_with(spec, observations, split_windows));
    }
    let mut slices = Vec::with_capacity(lengths.len());
    let mut start = 0;
    for &len in &lengths {
        slices.push(&observations[start..start + len]);
        start += len;
    }
    let chunk_outcomes: Vec<CollectiveOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = slices
            .into_iter()
            .map(|slice| scope.spawn(move || check_collective_with(spec, slice, split_windows)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().map_err(|payload| CheckError::WorkerPanic {
                    payload: panic_payload(payload.as_ref()),
                })
            })
            .collect::<Result<Vec<_>, CheckError>>()
    })?;
    let mut outcome = CollectiveOutcome::default();
    for chunk in chunk_outcomes {
        outcome.results.extend(chunk.results);
        outcome.stats = outcome.stats.merge(&chunk.stats);
    }
    Ok(outcome)
}

/// A collective checking pass failed for a reason outside the memory model
/// — the graphs themselves are neither valid nor violating.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckError {
    /// A chunk worker thread panicked. The panic is contained to the
    /// checking call so the campaign can degrade the affected test instead
    /// of aborting the process.
    WorkerPanic {
        /// Stringified panic payload.
        payload: String,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::WorkerPanic { payload } => {
                write!(f, "collective chunk worker panicked: {payload}")
            }
        }
    }
}

impl std::error::Error for CheckError {}

fn panic_payload(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Collective checking over a streaming iterator of observations.
///
/// This is the bounded-memory form of [`check_collective`]: the checker
/// holds only its windowed re-sort state (the last valid topological order
/// and the previous observation), never the full observation sequence, so
/// an externally merged signature stream of any length can be checked in
/// O(test size) memory. Per-graph verdicts are delivered to `on_result`
/// in input order; the returned [`CollectiveStats`] — and every verdict —
/// are identical to the slice-based checkers', which are themselves built
/// on this path.
pub fn check_collective_iter<I, F>(
    spec: &TestGraphSpec,
    observations: I,
    split_windows: bool,
    mut on_result: F,
) -> CollectiveStats
where
    I: IntoIterator,
    I::Item: Borrow<ObservedEdges>,
    F: FnMut(usize, Result<(), Violation>),
{
    let mut checker = CollectiveChecker::new(spec);
    if split_windows {
        checker = checker.with_split_windows();
    }
    for (i, obs) in observations.into_iter().enumerate() {
        on_result(i, checker.push(obs.borrow()));
    }
    *checker.stats()
}

fn check_collective_with(
    spec: &TestGraphSpec,
    observations: &[ObservedEdges],
    split_windows: bool,
) -> CollectiveOutcome {
    let mut outcome = CollectiveOutcome {
        results: Vec::with_capacity(observations.len()),
        ..CollectiveOutcome::default()
    };
    outcome.stats = check_collective_iter(spec, observations, split_windows, |_, result| {
        outcome.results.push(result);
    });
    outcome
}

/// Streaming collective checker: feed one observation at a time.
///
/// This is the online form of [`check_collective`], suitable for checking
/// signatures as they arrive from a device instead of materializing the
/// whole sequence first. Push observations in ascending-signature order for
/// the §4.1 similarity benefit; correctness does not depend on the order.
///
/// # Example
///
/// ```
/// use mtc_graph::{CheckOptions, CollectiveChecker, TestGraphSpec};
/// use mtc_isa::{litmus, Mcm, OpId, ReadsFrom, Tid, Value};
///
/// let t = litmus::corr();
/// let spec = TestGraphSpec::new(&t.program, Mcm::Tso);
/// let mut checker = CollectiveChecker::new(&spec);
/// let mut rf = ReadsFrom::new();
/// rf.record(OpId::new(Tid(1), 0), Value(1));
/// rf.record(OpId::new(Tid(1), 1), Value(1));
/// let obs = spec.observe(&t.program, &rf, &CheckOptions::default());
/// assert!(checker.push(&obs).is_ok());
/// assert_eq!(checker.stats().graphs, 1);
/// ```
#[derive(Clone, Debug)]
pub struct CollectiveChecker<'s> {
    spec: &'s TestGraphSpec,
    split_windows: bool,
    /// Current topological order and its inverse, valid for `base`.
    order: Vec<u32>,
    pos: Vec<u32>,
    /// The last observation the current order validates.
    base: Option<ObservedEdges>,
    stats: CollectiveStats,
}

impl<'s> CollectiveChecker<'s> {
    /// Creates a checker with the paper-faithful single re-sorting window.
    pub fn new(spec: &'s TestGraphSpec) -> Self {
        CollectiveChecker {
            spec,
            split_windows: false,
            order: Vec::new(),
            pos: vec![0; spec.num_vertices()],
            base: None,
            stats: CollectiveStats::default(),
        }
    }

    /// Returns the checker using split re-sorting windows (see
    /// [`check_collective_split`]).
    pub fn with_split_windows(mut self) -> Self {
        self.split_windows = true;
        self
    }

    /// Work counters and the Figure 14 breakdown so far.
    pub fn stats(&self) -> &CollectiveStats {
        &self.stats
    }

    /// Checks one more execution's observed edges.
    ///
    /// # Errors
    ///
    /// Returns the dependency [`Violation`] when the execution's constraint
    /// graph is cyclic; the checker recovers on the next push with a
    /// complete sort.
    pub fn push(&mut self, obs: &ObservedEdges) -> Result<(), Violation> {
        self.stats.graphs += 1;
        match self.base.take() {
            None => {
                // First graph (or recovery): complete conventional sort.
                self.stats.complete += 1;
                match full_sort(self.spec, obs, &mut self.stats.work) {
                    Ok(order) => {
                        for (p, &v) in order.iter().enumerate() {
                            self.pos[v as usize] = p as u32;
                        }
                        self.order = order;
                        self.base = Some(obs.clone());
                        Ok(())
                    }
                    Err(cycle) => {
                        self.stats.violations += 1;
                        Err(violation_from_cycle(self.spec, cycle))
                    }
                }
            }
            Some(prev) => {
                // Diff against the last valid observation; only new edges
                // can point backwards under a valid order.
                let mut intervals: Vec<(u32, u32)> = Vec::new();
                for (u, v) in obs.difference(&prev) {
                    self.stats.work += 1;
                    if self.pos[u as usize] > self.pos[v as usize] {
                        intervals.push((self.pos[v as usize], self.pos[u as usize]));
                    }
                }
                if intervals.is_empty() {
                    self.stats.no_resort += 1;
                    self.base = Some(obs.clone());
                    return Ok(());
                }
                self.stats.incremental += 1;
                self.stats.incremental_vertices += self.spec.num_vertices() as u64;
                if self.split_windows {
                    intervals.sort_unstable();
                    let mut merged: Vec<(u32, u32)> = Vec::with_capacity(intervals.len());
                    for (lo, hi) in intervals {
                        match merged.last_mut() {
                            Some((_, end)) if lo <= *end => *end = (*end).max(hi),
                            _ => merged.push((lo, hi)),
                        }
                    }
                    intervals = merged;
                } else {
                    // Paper-faithful: one window from the leading to the
                    // trailing boundary.
                    let lead = intervals
                        .iter()
                        .map(|&(lo, _)| lo)
                        .min()
                        .expect("non-empty");
                    let trail = intervals
                        .iter()
                        .map(|&(_, hi)| hi)
                        .max()
                        .expect("non-empty");
                    intervals = vec![(lead, trail)];
                }
                for (lead, trail) in intervals {
                    if let Err(violation) = resort_window(
                        self.spec,
                        obs,
                        &mut self.order,
                        &mut self.pos,
                        lead as usize,
                        trail as usize,
                        &mut self.stats,
                    ) {
                        self.stats.violations += 1;
                        // The order no longer matches any valid graph;
                        // recover with a complete sort on the next push
                        // (base stays empty).
                        return Err(violation);
                    }
                }
                self.base = Some(obs.clone());
                Ok(())
            }
        }
    }
}

/// Re-sorts `order[lead..=trail]` against all current edges among the
/// window's vertices. On success the window is spliced back and `pos`
/// updated; on failure the containing cycle is extracted.
#[allow(clippy::too_many_arguments)]
fn resort_window(
    spec: &TestGraphSpec,
    obs: &ObservedEdges,
    order: &mut [u32],
    pos: &mut [u32],
    lead: usize,
    trail: usize,
    stats: &mut CollectiveStats,
) -> Result<(), Violation> {
    let window = &order[lead..=trail];
    let w = window.len();
    stats.resorted_vertices += w as u64;
    // The window is contiguous in positions, so membership is a range check
    // on `pos` (still valid for the pre-splice order) and the local index
    // of vertex v is `pos[v] - lead`.
    let in_window = |v: u32| -> Option<usize> {
        let p = pos[v as usize] as usize;
        (lead..=trail).contains(&p).then(|| p - lead)
    };
    let mut indegree = vec![0u32; w];
    for &v in window {
        for wv in successors(spec, obs, v) {
            if let Some(j) = in_window(wv) {
                indegree[j] += 1;
            }
        }
    }
    // Store-first tie-break on the old position (= local index), keeping
    // the new suborder close to the old one.
    let mut ready_stores = BinaryHeap::new();
    let mut ready_others = BinaryHeap::new();
    for (i, &v) in window.iter().enumerate() {
        if indegree[i] == 0 {
            if spec.is_store(v) {
                ready_stores.push(Reverse(i));
            } else {
                ready_others.push(Reverse(i));
            }
        }
    }
    let mut sub_order: Vec<u32> = Vec::with_capacity(w);
    while let Some(Reverse(i)) = ready_stores.pop().or_else(|| ready_others.pop()) {
        let v = window[i];
        sub_order.push(v);
        stats.work += 1;
        for wv in successors(spec, obs, v) {
            if let Some(j) = in_window(wv) {
                stats.work += 1;
                indegree[j] -= 1;
                if indegree[j] == 0 {
                    if spec.is_store(wv) {
                        ready_stores.push(Reverse(j));
                    } else {
                        ready_others.push(Reverse(j));
                    }
                }
            }
        }
    }
    if sub_order.len() < w {
        let remaining: Vec<u32> = window
            .iter()
            .enumerate()
            .filter(|&(i, _)| indegree[i] > 0)
            .map(|(_, &v)| v)
            .collect();
        // Restrict cycle extraction to the window by keeping only window
        // vertices in `remaining` (cycles never leave the window).
        let cycle = extract_cycle(spec, obs, &remaining);
        return Err(violation_from_cycle(spec, cycle));
    }
    for (offset, &v) in sub_order.iter().enumerate() {
        order[lead + offset] = v;
        pos[v as usize] = (lead + offset) as u32;
    }
    Ok(())
}

fn successors<'a>(
    spec: &'a TestGraphSpec,
    obs: &'a ObservedEdges,
    v: u32,
) -> impl Iterator<Item = u32> + 'a {
    spec.static_successors(v)
        .iter()
        .copied()
        .chain(obs.successors(v))
}

/// Convenience: checks the same observations both ways and reports the
/// work ratio (collective / conventional), the Figure 9 metric.
pub fn compare_checkers(
    spec: &TestGraphSpec,
    observations: &[ObservedEdges],
) -> (CollectiveOutcome, crate::CheckOutcome, f64) {
    let collective = check_collective(spec, observations);
    let conventional = crate::check_conventional(spec, observations);
    let ratio = if conventional.stats.work == 0 {
        0.0
    } else {
        collective.stats.work as f64 / conventional.stats.work as f64
    };
    (collective, conventional, ratio)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CheckOptions;
    use mtc_isa::{litmus, Mcm, OpId, Program, ReadsFrom, Tid, Value};

    fn corr() -> (Program, TestGraphSpec) {
        let t = litmus::corr();
        let spec = TestGraphSpec::new(&t.program, Mcm::Tso);
        (t.program, spec)
    }

    fn obs(p: &Program, spec: &TestGraphSpec, reads: &[(u32, u32, u32)]) -> ObservedEdges {
        let mut rf = ReadsFrom::new();
        for &(t, i, v) in reads {
            rf.record(OpId::new(Tid(t), i), Value(v));
        }
        spec.observe(p, &rf, &CheckOptions::default())
    }

    #[test]
    fn agrees_with_conventional_on_valid_sequences() {
        let (p, spec) = corr();
        let seq = vec![
            obs(&p, &spec, &[(1, 0, 0), (1, 1, 0)]),
            obs(&p, &spec, &[(1, 0, 0), (1, 1, 1)]),
            obs(&p, &spec, &[(1, 0, 1), (1, 1, 1)]),
        ];
        let (collective, conventional, ratio) = compare_checkers(&spec, &seq);
        assert_eq!(collective.violation_count(), 0);
        assert_eq!(conventional.violation_count(), 0);
        assert!(ratio <= 1.0, "collective must not do more work ({ratio})");
        assert_eq!(collective.stats.complete, 1);
        assert_eq!(collective.stats.no_resort + collective.stats.incremental, 2);
    }

    #[test]
    fn detects_the_violating_graph_in_a_sequence() {
        let (p, spec) = corr();
        let seq = vec![
            obs(&p, &spec, &[(1, 0, 1), (1, 1, 1)]), // fine
            obs(&p, &spec, &[(1, 0, 1), (1, 1, 0)]), // anti-coherent
            obs(&p, &spec, &[(1, 0, 0), (1, 1, 1)]), // fine again
        ];
        let outcome = check_collective(&spec, &seq);
        assert!(outcome.results[0].is_ok());
        assert!(outcome.results[1].is_err());
        assert!(outcome.results[2].is_ok());
        // After a violation the checker recovers with a complete sort.
        assert_eq!(outcome.stats.complete, 2);
    }

    #[test]
    fn no_resort_when_graphs_repeat() {
        let (p, spec) = corr();
        let o = obs(&p, &spec, &[(1, 0, 1), (1, 1, 1)]);
        let seq = vec![o.clone(), o.clone(), o];
        let outcome = check_collective(&spec, &seq);
        assert_eq!(outcome.stats.no_resort, 2);
        assert_eq!(outcome.stats.resorted_vertices, 0);
    }

    #[test]
    fn empty_sequence_is_trivially_fine() {
        let (_, spec) = corr();
        let outcome = check_collective(&spec, &[]);
        assert_eq!(outcome.stats.graphs, 0);
        assert_eq!(outcome.violation_count(), 0);
    }

    #[test]
    fn streaming_checker_matches_batch() {
        let (p, spec) = corr();
        let seq = vec![
            obs(&p, &spec, &[(1, 0, 0), (1, 1, 0)]),
            obs(&p, &spec, &[(1, 0, 1), (1, 1, 0)]), // violating
            obs(&p, &spec, &[(1, 0, 1), (1, 1, 1)]),
            obs(&p, &spec, &[(1, 0, 0), (1, 1, 1)]),
        ];
        let batch = check_collective(&spec, &seq);
        let mut streaming = CollectiveChecker::new(&spec);
        for (i, o) in seq.iter().enumerate() {
            assert_eq!(
                streaming.push(o).is_ok(),
                batch.results[i].is_ok(),
                "graph {i} verdict differs"
            );
        }
        assert_eq!(*streaming.stats(), batch.stats);
    }

    #[test]
    fn split_windows_agree_with_single_window() {
        let (p, spec) = corr();
        let seq = vec![
            obs(&p, &spec, &[(1, 0, 0), (1, 1, 0)]),
            obs(&p, &spec, &[(1, 0, 1), (1, 1, 1)]),
            obs(&p, &spec, &[(1, 0, 1), (1, 1, 0)]), // violating
            obs(&p, &spec, &[(1, 0, 0), (1, 1, 1)]),
        ];
        let single = check_collective(&spec, &seq);
        let split = check_collective_split(&spec, &seq);
        for (a, b) in single.results.iter().zip(split.results.iter()) {
            assert_eq!(a.is_ok(), b.is_ok());
        }
        assert!(split.stats.resorted_vertices <= single.stats.resorted_vertices);
    }

    /// The four observable outcomes of the CoRR litmus test (one violating).
    fn corr_outcomes(p: &Program, spec: &TestGraphSpec) -> Vec<ObservedEdges> {
        vec![
            obs(p, spec, &[(1, 0, 0), (1, 1, 0)]),
            obs(p, spec, &[(1, 0, 0), (1, 1, 1)]),
            obs(p, spec, &[(1, 0, 1), (1, 1, 1)]),
            obs(p, spec, &[(1, 0, 1), (1, 1, 0)]), // anti-coherent
        ]
    }

    #[test]
    fn chunked_matches_boundaries_on_the_even_plan() {
        let (p, spec) = corr();
        let outcomes = corr_outcomes(&p, &spec);
        let seq: Vec<ObservedEdges> = (0..17).map(|i| outcomes[i % 4].clone()).collect();
        for chunks in [1, 2, 3, 4, 8] {
            let lengths = even_chunk_lengths(seq.len(), chunks);
            let parallel =
                check_collective_chunked(&spec, &seq, chunks, false).expect("no worker panics");
            let serial = check_collective_with_boundaries(&spec, &seq, &lengths, false);
            assert_eq!(parallel.results, serial.results, "{chunks} chunks");
            assert_eq!(parallel.stats, serial.stats, "{chunks} chunks");
        }
    }

    #[test]
    fn chunking_accounts_extra_complete_sorts() {
        let (p, spec) = corr();
        let outcomes = corr_outcomes(&p, &spec);
        let seq: Vec<ObservedEdges> = (0..12).map(|i| outcomes[i % 3].clone()).collect();
        let whole = check_collective(&spec, &seq);
        let chunked = check_collective_chunked(&spec, &seq, 4, false).expect("no worker panics");
        // Verdicts identical; each chunk re-seeds with one complete sort.
        for (a, b) in whole.results.iter().zip(chunked.results.iter()) {
            assert_eq!(a.is_ok(), b.is_ok());
        }
        assert_eq!(chunked.stats.complete, whole.stats.complete + 3);
        assert_eq!(
            chunked.stats.complete + chunked.stats.no_resort + chunked.stats.incremental,
            chunked.stats.graphs,
            "Figure 14 identity must survive chunking"
        );
    }

    #[test]
    fn even_chunk_lengths_partition() {
        assert_eq!(even_chunk_lengths(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(even_chunk_lengths(3, 8), vec![1, 1, 1]);
        assert_eq!(even_chunk_lengths(0, 4), vec![0]);
        assert_eq!(even_chunk_lengths(5, 1), vec![5]);
    }

    #[test]
    fn merge_is_fieldwise_addition() {
        let a = CollectiveStats {
            graphs: 3,
            complete: 1,
            no_resort: 1,
            incremental: 1,
            resorted_vertices: 4,
            incremental_vertices: 8,
            violations: 1,
            work: 20,
        };
        let b = CollectiveStats {
            graphs: 2,
            complete: 1,
            no_resort: 1,
            incremental: 0,
            resorted_vertices: 0,
            incremental_vertices: 0,
            violations: 0,
            work: 5,
        };
        let m = a.merge(&b);
        assert_eq!(m.graphs, 5);
        assert_eq!(m.complete + m.no_resort + m.incremental, m.graphs);
        assert_eq!(m.work, 25);
        assert_eq!(a.merge(&CollectiveStats::default()), a, "identity");
        assert_eq!(a.merge(&b), b.merge(&a), "commutative");
    }

    mod chunk_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Arbitrary chunk boundaries never change any graph's verdict,
            /// and the merged stats keep the Figure 14 identity.
            #[test]
            fn boundaries_do_not_change_verdicts(
                picks in prop::collection::vec(0usize..4, 1..40),
                cuts in prop::collection::vec(any::<usize>(), 0..6),
            ) {
                let (p, spec) = corr();
                let outcomes = corr_outcomes(&p, &spec);
                let seq: Vec<ObservedEdges> =
                    picks.iter().map(|&i| outcomes[i].clone()).collect();
                let mut bounds: Vec<usize> =
                    cuts.iter().map(|&c| c % (seq.len() + 1)).collect();
                bounds.push(0);
                bounds.push(seq.len());
                bounds.sort_unstable();
                bounds.dedup();
                let lengths: Vec<usize> =
                    bounds.windows(2).map(|w| w[1] - w[0]).collect();

                let whole = check_collective(&spec, &seq);
                let chunked =
                    check_collective_with_boundaries(&spec, &seq, &lengths, false);
                prop_assert_eq!(whole.results.len(), chunked.results.len());
                for (a, b) in whole.results.iter().zip(chunked.results.iter()) {
                    prop_assert_eq!(a.is_ok(), b.is_ok());
                }
                let s = chunked.stats;
                prop_assert_eq!(
                    s.complete + s.no_resort + s.incremental,
                    s.graphs
                );
                prop_assert_eq!(s.graphs, seq.len());
                prop_assert_eq!(s.violations, whole.stats.violations);
            }
        }
    }

    #[test]
    fn stats_fractions() {
        let mut s = CollectiveStats::default();
        assert_eq!(s.affected_vertex_fraction(), 0.0);
        assert_eq!(s.no_resort_fraction(), 0.0);
        s.graphs = 10;
        s.no_resort = 5;
        s.incremental = 4;
        s.incremental_vertices = 40;
        s.resorted_vertices = 10;
        assert_eq!(s.no_resort_fraction(), 0.5);
        assert_eq!(s.affected_vertex_fraction(), 0.25);
    }
}
