//! Violation diagnostics: explain a dependency cycle the way Figure 13
//! does — each edge labelled with *why* it exists (reads-from, program
//! order, from-read), plus the instructions and observed values involved.

use crate::{TestGraphSpec, Violation};
use mtc_isa::{Instr, OpId, Program, ReadsFrom};
use std::fmt::Write as _;

/// How one edge of a violation cycle is justified.
#[derive(Clone, Debug, Eq, PartialEq)]
pub enum EdgeReason {
    /// MCM-mandated program order (possibly through fences).
    ProgramOrder,
    /// The destination load observed the source store's value.
    ReadsFrom,
    /// The source load observed a value coherence-older than the
    /// destination store, so it must precede it.
    FromRead,
    /// Intra-thread write serialization (same-address store chain).
    WriteSerialization,
    /// The edge could not be re-derived (stale observation or wrong
    /// program).
    Unknown,
}

impl EdgeReason {
    fn label(&self) -> &'static str {
        match self {
            EdgeReason::ProgramOrder => "po",
            EdgeReason::ReadsFrom => "rf",
            EdgeReason::FromRead => "fr",
            EdgeReason::WriteSerialization => "ws",
            EdgeReason::Unknown => "??",
        }
    }
}

/// One annotated edge of an explained cycle.
#[derive(Clone, Debug)]
pub struct ExplainedEdge {
    /// Source operation.
    pub from: OpId,
    /// Destination operation.
    pub to: OpId,
    /// Why the edge exists.
    pub reason: EdgeReason,
}

/// Classifies every edge of `violation`'s cycle against the program and the
/// observation that produced it, and renders a Figure 13-style report.
///
/// The classification re-derives each edge: static reachability gives
/// po/ws, the observation gives rf/fr. Edges that cannot be re-derived are
/// labelled `??` rather than dropped, so a mismatched observation is
/// visible instead of silently misexplained.
///
/// ```
/// use mtc_graph::{check_conventional, explain_violation, CheckOptions, TestGraphSpec};
/// use mtc_isa::{litmus, Mcm, OpId, ReadsFrom, Tid, Value};
///
/// let t = litmus::corr();
/// let spec = TestGraphSpec::new(&t.program, Mcm::Tso);
/// let mut rf = ReadsFrom::new();
/// rf.record(OpId::new(Tid(1), 0), Value(1));      // first load sees the store,
/// rf.record(OpId::new(Tid(1), 1), Value::INIT);   // second reads older: violation
/// let obs = spec.observe(&t.program, &rf, &CheckOptions::default());
/// let violation = check_conventional(&spec, &[obs]).results[0].clone().unwrap_err();
/// let report = explain_violation(&t.program, &spec, &rf, &violation);
/// assert!(report.contains("--rf->") && report.contains("--fr->"));
/// ```
pub fn explain_violation(
    program: &Program,
    spec: &TestGraphSpec,
    observed: &ReadsFrom,
    violation: &Violation,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "memory consistency violation: cycle of {} operations",
        violation.cycle.len()
    );
    for (i, &op) in violation.cycle.iter().enumerate() {
        let next = violation.cycle[(i + 1) % violation.cycle.len()];
        let instr = program.instr(op);
        let _ = match instr {
            Some(instr) => {
                let observed_note = observed
                    .value_of(op)
                    .map(|v| format!(" (observed {v})"))
                    .unwrap_or_default();
                writeln!(out, "  {op}: {instr}{observed_note}")
            }
            None => writeln!(out, "  {op}: <not in program>"),
        };
        let reason = classify_edge(program, spec, observed, op, next);
        let _ = writeln!(out, "      --{}-> {next}", reason.label());
    }
    out
}

/// Classifies the cycle's edges without rendering.
pub fn classify_cycle(
    program: &Program,
    spec: &TestGraphSpec,
    observed: &ReadsFrom,
    violation: &Violation,
) -> Vec<ExplainedEdge> {
    violation
        .cycle
        .iter()
        .enumerate()
        .map(|(i, &from)| {
            let to = violation.cycle[(i + 1) % violation.cycle.len()];
            ExplainedEdge {
                from,
                to,
                reason: classify_edge(program, spec, observed, from, to),
            }
        })
        .collect()
}

fn classify_edge(
    program: &Program,
    spec: &TestGraphSpec,
    observed: &ReadsFrom,
    from: OpId,
    to: OpId,
) -> EdgeReason {
    let (Some(from_instr), Some(to_instr)) = (program.instr(from), program.instr(to)) else {
        return EdgeReason::Unknown;
    };
    // rf: `to` is a load that observed `from`'s store value.
    if let (Instr::Store { value, .. }, Instr::Load { .. }) = (from_instr, to_instr) {
        if observed.value_of(to) == Some(mtc_isa::Value::from(*value)) {
            return EdgeReason::ReadsFrom;
        }
    }
    // fr: `from` is a load whose observed value is coherence-older than the
    // store `to` (same address; either init, or a store whose static ws
    // chain leads to `to`).
    if from_instr.is_load() && to_instr.is_store() && from_instr.addr() == to_instr.addr() {
        if let Some(value) = observed.value_of(from) {
            match value.store_id() {
                None => return EdgeReason::FromRead,
                Some(id) => {
                    let source = program.store_op(id);
                    if source.tid == to.tid && source.idx < to.idx {
                        return EdgeReason::FromRead;
                    }
                }
            }
        }
    }
    // Static: same-thread edges are program order (same-address store
    // chains double as write serialization).
    if from.tid == to.tid {
        if from_instr.is_store() && to_instr.is_store() && from_instr.addr() == to_instr.addr() {
            return EdgeReason::WriteSerialization;
        }
        if spec
            .static_successors(spec.vertex(from))
            .contains(&spec.vertex(to))
        {
            return EdgeReason::ProgramOrder;
        }
        // Not a direct generating edge but same-thread: transitive po.
        if from.idx < to.idx {
            return EdgeReason::ProgramOrder;
        }
    }
    EdgeReason::Unknown
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_conventional, CheckOptions};
    use mtc_isa::{litmus, Mcm, Tid, Value};

    fn corr_violation() -> (mtc_isa::Program, TestGraphSpec, ReadsFrom, Violation) {
        let t = litmus::corr();
        let spec = TestGraphSpec::new(&t.program, Mcm::Tso);
        let mut rf = ReadsFrom::new();
        rf.record(OpId::new(Tid(1), 0), Value(1));
        rf.record(OpId::new(Tid(1), 1), Value::INIT);
        let obs = spec.observe(&t.program, &rf, &CheckOptions::default());
        let violation = check_conventional(&spec, &[obs]).results[0]
            .clone()
            .unwrap_err();
        (t.program, spec, rf, violation)
    }

    #[test]
    fn corr_cycle_is_rf_po_fr() {
        let (program, spec, rf, violation) = corr_violation();
        let edges = classify_cycle(&program, &spec, &rf, &violation);
        assert_eq!(edges.len(), 3);
        let mut labels: Vec<&str> = edges.iter().map(|e| e.reason.label()).collect();
        labels.sort_unstable();
        assert_eq!(labels, vec!["fr", "po", "rf"], "the Figure 13 triangle");
    }

    #[test]
    fn explanation_renders_instructions_and_values() {
        let (program, spec, rf, violation) = corr_violation();
        let text = explain_violation(&program, &spec, &rf, &violation);
        assert!(text.contains("cycle of 3 operations"));
        assert!(text.contains("--rf->"));
        assert!(text.contains("--fr->"));
        assert!(text.contains("observed init"), "{text}");
        assert!(text.contains("ld 0x0"));
    }

    #[test]
    fn mismatched_observation_is_flagged_not_misexplained() {
        let (program, spec, _, violation) = corr_violation();
        // Classify against an unrelated (empty) observation.
        let edges = classify_cycle(&program, &spec, &ReadsFrom::new(), &violation);
        assert!(
            edges.iter().any(|e| e.reason == EdgeReason::Unknown),
            "cross-thread edges cannot be re-derived without the observation"
        );
    }
}
