//! k-medoids clustering over execution observations — the §4.1 limit study
//! (Figure 6).
//!
//! Before settling on signature sorting, the paper measured how well a
//! handful of representative executions could stand in for the full set:
//! cluster the executions with k-medoids under the "number of differing
//! reads-from relationships" distance and report the total distance to the
//! closest medoid for varying k. The conclusion — clustering is
//! computationally prohibitive and degrades on diverse tests — motivates
//! the lightweight signature sort.

use mtc_isa::ReadsFrom;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Result of one k-medoids clustering run.
#[derive(Clone, Debug, Default, Eq, PartialEq, Serialize, Deserialize)]
pub struct KMedoidsResult {
    /// Indices (into the input slice) of the chosen medoids.
    pub medoids: Vec<usize>,
    /// For each input item, the index of its closest medoid (into
    /// `medoids`).
    pub assignment: Vec<usize>,
    /// Σ over items of the distance to the closest medoid — Figure 6's
    /// y-axis ("number of different reads-from relationships").
    pub total_distance: u64,
}

/// Clusters `items` into `k` medoids with the classic alternating
/// (Voronoi-iteration) heuristic: random initialization, then repeatedly
/// (1) assign items to the nearest medoid and (2) re-pick each cluster's
/// medoid as its distance-sum minimizer, until stable or `max_iters`.
///
/// Distances are [`ReadsFrom::diff_count`]. The distance matrix is
/// precomputed, so memory is `O(n²)` — ample for the paper's 1 000-run
/// studies, and exactly why the paper rejects clustering for production
/// checking.
///
/// ```
/// use mtc_graph::k_medoids;
/// use mtc_isa::{OpId, ReadsFrom, Tid, Value};
///
/// let items: Vec<ReadsFrom> = (0..6u32)
///     .map(|i| [(OpId::new(Tid(0), 0), Value(i / 3))].into_iter().collect())
///     .collect();
/// // Two natural clusters (values 0 and 1): two medoids cover them fully.
/// assert_eq!(k_medoids(&items, 2, 7, 20).total_distance, 0);
/// ```
///
/// # Panics
///
/// Panics if `k` is zero or exceeds `items.len()`.
pub fn k_medoids(items: &[ReadsFrom], k: usize, seed: u64, max_iters: usize) -> KMedoidsResult {
    assert!(k >= 1, "k must be at least 1");
    assert!(
        k <= items.len(),
        "k ({k}) exceeds item count ({})",
        items.len()
    );
    let n = items.len();
    let mut dist = vec![0u32; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = items[i].diff_count(&items[j]) as u32;
            dist[i * n + j] = d;
            dist[j * n + i] = d;
        }
    }
    let d = |a: usize, b: usize| dist[a * n + b];

    let mut rng = StdRng::seed_from_u64(seed);
    let mut indices: Vec<usize> = (0..n).collect();
    indices.shuffle(&mut rng);
    let mut medoids: Vec<usize> = indices[..k].to_vec();
    let mut assignment = vec![0usize; n];

    for _ in 0..max_iters {
        // Assignment step.
        for (i, slot) in assignment.iter_mut().enumerate() {
            *slot = medoids
                .iter()
                .enumerate()
                .min_by_key(|&(_, &m)| d(i, m))
                .map(|(c, _)| c)
                .expect("k >= 1");
        }
        // Update step.
        let mut changed = false;
        #[allow(clippy::needless_range_loop)]
        for c in 0..k {
            let members: Vec<usize> = (0..n).filter(|&i| assignment[i] == c).collect();
            if members.is_empty() {
                continue;
            }
            let best = members
                .iter()
                .copied()
                .min_by_key(|&cand| members.iter().map(|&m| d(cand, m) as u64).sum::<u64>())
                .expect("non-empty cluster");
            if best != medoids[c] {
                medoids[c] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Final assignment against the settled medoids.
    for (i, slot) in assignment.iter_mut().enumerate() {
        *slot = medoids
            .iter()
            .enumerate()
            .min_by_key(|&(_, &m)| d(i, m))
            .map(|(c, _)| c)
            .expect("k >= 1");
    }
    let total_distance = (0..n).map(|i| d(i, medoids[assignment[i]]) as u64).sum();
    KMedoidsResult {
        medoids,
        assignment,
        total_distance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtc_isa::{OpId, Tid, Value};

    fn rf(vals: &[u32]) -> ReadsFrom {
        vals.iter()
            .enumerate()
            .map(|(i, &v)| (OpId::new(Tid(0), i as u32), Value(v)))
            .collect()
    }

    #[test]
    fn k_equals_n_gives_zero_distance() {
        let items = vec![rf(&[1, 2]), rf(&[1, 3]), rf(&[4, 4])];
        let r = k_medoids(&items, 3, 0, 20);
        assert_eq!(r.total_distance, 0);
        let mut meds = r.medoids.clone();
        meds.sort_unstable();
        meds.dedup();
        assert_eq!(meds.len(), 3);
    }

    #[test]
    fn distance_decreases_with_k() {
        // Two tight clusters plus noise.
        let mut items = Vec::new();
        for v in 0..10 {
            items.push(rf(&[1, 1, v]));
            items.push(rf(&[9, 9, v]));
        }
        let d1 = k_medoids(&items, 1, 7, 50).total_distance;
        let d2 = k_medoids(&items, 2, 7, 50).total_distance;
        let d10 = k_medoids(&items, 10, 7, 50).total_distance;
        assert!(d2 <= d1, "k=2 ({d2}) should beat k=1 ({d1})");
        assert!(d10 <= d2);
    }

    #[test]
    fn two_obvious_clusters_are_found() {
        let items = vec![
            rf(&[0, 0, 0]),
            rf(&[0, 0, 0]),
            rf(&[0, 0, 1]),
            rf(&[5, 5, 5]),
            rf(&[5, 5, 5]),
            rf(&[5, 5, 6]),
        ];
        let r = k_medoids(&items, 2, 3, 50);
        // Perfect clustering leaves only the two outliers' single diffs.
        assert_eq!(r.total_distance, 2);
        assert_eq!(r.assignment[0], r.assignment[1]);
        assert_eq!(r.assignment[3], r.assignment[4]);
        assert_ne!(r.assignment[0], r.assignment[3]);
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_panics() {
        k_medoids(&[rf(&[0])], 0, 0, 10);
    }

    #[test]
    #[should_panic(expected = "exceeds item count")]
    fn oversized_k_panics() {
        k_medoids(&[rf(&[0])], 2, 0, 10);
    }
}
