//! Graphviz (DOT) export of constraint graphs — the debugging view of
//! Figure 2's diagrams.

use crate::{ObservedEdges, TestGraphSpec, Violation};
use mtc_isa::{OpId, Program};
use std::collections::HashSet;
use std::fmt::Write as _;

/// Renders one execution's constraint graph as Graphviz DOT.
///
/// Vertices are grouped per thread (clusters) and labelled with their
/// instruction; static (program-order) edges are solid black, observed
/// (rf/fr) edges are dashed blue, and edges on `violation`'s cycle are
/// highlighted red. Feed the output to `dot -Tsvg` to get a Figure 2-style
/// diagram.
pub fn render_dot(
    program: &Program,
    spec: &TestGraphSpec,
    obs: &ObservedEdges,
    violation: Option<&Violation>,
) -> String {
    let cycle_edges: HashSet<(OpId, OpId)> = violation
        .map(|v| {
            v.cycle
                .iter()
                .zip(v.cycle.iter().cycle().skip(1))
                .map(|(&a, &b)| (a, b))
                .collect()
        })
        .unwrap_or_default();
    let is_cycle_edge = |u: u32, v: u32| cycle_edges.contains(&(spec.op(u), spec.op(v)));

    let mut out = String::from(
        "digraph constraint_graph {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n",
    );
    for (t, code) in program.threads().iter().enumerate() {
        let _ = writeln!(out, "  subgraph cluster_t{t} {{\n    label=\"thread {t}\";");
        for (i, instr) in code.iter().enumerate() {
            let op = OpId::new(mtc_isa::Tid(t as u32), i as u32);
            let v = spec.vertex(op);
            let _ = writeln!(out, "    v{v} [label=\"{op}: {instr}\"];");
        }
        let _ = writeln!(out, "  }}");
    }
    for v in 0..spec.num_vertices() as u32 {
        for &w in spec.static_successors(v) {
            let color = if is_cycle_edge(v, w) {
                ", color=red, penwidth=2"
            } else {
                ""
            };
            let _ = writeln!(out, "  v{v} -> v{w} [style=solid{color}];");
        }
    }
    for &(u, v) in obs.edges() {
        let color = if is_cycle_edge(u, v) {
            "color=red, penwidth=2"
        } else {
            "color=blue"
        };
        let _ = writeln!(out, "  v{u} -> v{v} [style=dashed, {color}];");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_conventional, CheckOptions};
    use mtc_isa::{litmus, Mcm, ReadsFrom, Tid, Value};

    #[test]
    fn dot_output_is_well_formed() {
        let t = litmus::corr();
        let spec = TestGraphSpec::new(&t.program, Mcm::Tso);
        let mut rf = ReadsFrom::new();
        rf.record(OpId::new(Tid(1), 0), Value(1));
        rf.record(OpId::new(Tid(1), 1), Value::INIT);
        let obs = spec.observe(&t.program, &rf, &CheckOptions::default());
        let outcome = check_conventional(&spec, std::slice::from_ref(&obs));
        let violation = outcome.results[0].as_ref().unwrap_err();

        let dot = render_dot(&t.program, &spec, &obs, Some(violation));
        assert!(dot.starts_with("digraph"));
        assert!(dot.ends_with("}\n"));
        assert_eq!(dot.matches("subgraph cluster_t").count(), 2);
        assert!(dot.contains("color=red"), "cycle edges highlighted");
        assert!(dot.contains("style=dashed"), "observed edges present");
        // Every vertex declared.
        for v in 0..spec.num_vertices() {
            assert!(dot.contains(&format!("v{v} [label=")));
        }
    }

    #[test]
    fn dot_without_violation_has_no_red() {
        let t = litmus::store_buffering();
        let spec = TestGraphSpec::new(&t.program, Mcm::Tso);
        let mut rf = ReadsFrom::new();
        rf.record(OpId::new(Tid(0), 1), Value(2));
        rf.record(OpId::new(Tid(1), 1), Value(1));
        let obs = spec.observe(&t.program, &rf, &CheckOptions::default());
        let dot = render_dot(&t.program, &spec, &obs, None);
        assert!(!dot.contains("color=red"));
    }
}
