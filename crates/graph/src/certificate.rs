//! Verdict certificates: compact, independently checkable witnesses for
//! checker verdicts.
//!
//! A PASS verdict is witnessed by the topological order the checker
//! produced — already materialized inside the sort scratch, previously
//! discarded. A FAIL verdict is witnessed by the extracted cycle. Either
//! witness can be re-validated in one O(V + E) linear pass with no graph
//! search at all (see the `mtc-certify` crate), following Roy et al.'s
//! observation that memory-consistency verdicts admit polynomial-time
//! checkable certificates.
//!
//! # Binary format (version 1)
//!
//! Certificates serialize to a byte-stable, self-delimiting binary record:
//!
//! ```text
//! magic   4 bytes  b"MTCC"
//! version u16 LE   1
//! kind    u8       0 = pass, 1 = fail
//! len     u32 LE   payload element count
//! payload len x u32 LE  vertex ids (the order, or the cycle)
//! ```
//!
//! The format is versioned for forward evolution and byte-stable: the same
//! witness always serializes to the same bytes, so certificates can be
//! content-addressed and byte-pinned in golden vectors.

use std::fmt;

/// Magic prefix of every serialized certificate.
pub const CERT_MAGIC: [u8; 4] = *b"MTCC";

/// Current certificate format version.
pub const CERT_VERSION: u16 = 1;

/// Fixed header size: magic + version + kind + payload length.
pub const CERT_HEADER_BYTES: usize = 11;

/// A verdict witness: everything needed to re-validate one checker verdict
/// against the constraint graph without re-running the decision procedure.
#[derive(Clone, Debug, Eq, PartialEq, Hash)]
pub enum Certificate {
    /// The graph was acyclic: `order` is a topological order of all
    /// vertices (static + observed edges all point forward in it).
    Pass {
        /// Every vertex id exactly once, in topological order.
        order: Vec<u32>,
    },
    /// The graph was cyclic: `cycle` closes under the graph's edges (each
    /// consecutive pair, wrapping around, is a static or observed edge).
    Fail {
        /// The cycle's vertex ids in order; the last edge returns to the
        /// first element.
        cycle: Vec<u32>,
    },
}

impl Certificate {
    /// The payload vertex ids (order or cycle).
    pub fn payload(&self) -> &[u32] {
        match self {
            Certificate::Pass { order } => order,
            Certificate::Fail { cycle } => cycle,
        }
    }

    /// `true` for a PASS witness.
    pub fn is_pass(&self) -> bool {
        matches!(self, Certificate::Pass { .. })
    }

    /// Size of the serialized record in bytes.
    pub fn encoded_len(&self) -> usize {
        CERT_HEADER_BYTES + 4 * self.payload().len()
    }

    /// Appends the serialized record to `out`.
    pub fn write_bytes(&self, out: &mut Vec<u8>) {
        out.reserve(self.encoded_len());
        out.extend_from_slice(&CERT_MAGIC);
        out.extend_from_slice(&CERT_VERSION.to_le_bytes());
        out.push(if self.is_pass() { 0 } else { 1 });
        let payload = self.payload();
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        for &v in payload {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Serializes the record into a fresh buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.write_bytes(&mut out);
        out
    }

    /// Parses one certificate from the front of `bytes`.
    ///
    /// The record is self-delimiting; the returned `usize` is the number of
    /// bytes consumed, so callers can parse concatenated certificates.
    ///
    /// # Errors
    ///
    /// [`CertificateError`] when the bytes are truncated, carry the wrong
    /// magic, an unsupported version, or an unknown kind byte.
    pub fn from_bytes(bytes: &[u8]) -> Result<(Certificate, usize), CertificateError> {
        if bytes.len() < CERT_HEADER_BYTES {
            return Err(CertificateError::Truncated);
        }
        if bytes[0..4] != CERT_MAGIC {
            return Err(CertificateError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != CERT_VERSION {
            return Err(CertificateError::UnsupportedVersion(version));
        }
        let kind = bytes[6];
        let len = u32::from_le_bytes([bytes[7], bytes[8], bytes[9], bytes[10]]) as usize;
        let total = CERT_HEADER_BYTES + 4 * len;
        if bytes.len() < total {
            return Err(CertificateError::Truncated);
        }
        let payload: Vec<u32> = bytes[CERT_HEADER_BYTES..total]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        let cert = match kind {
            0 => Certificate::Pass { order: payload },
            1 => Certificate::Fail { cycle: payload },
            other => return Err(CertificateError::BadKind(other)),
        };
        Ok((cert, total))
    }
}

/// A serialized certificate could not be parsed.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum CertificateError {
    /// Fewer bytes than the header or the declared payload require.
    Truncated,
    /// The record does not start with [`CERT_MAGIC`].
    BadMagic,
    /// The record's version is not [`CERT_VERSION`].
    UnsupportedVersion(u16),
    /// The kind byte is neither pass (0) nor fail (1).
    BadKind(u8),
}

impl fmt::Display for CertificateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertificateError::Truncated => write!(f, "certificate bytes are truncated"),
            CertificateError::BadMagic => write!(f, "certificate magic mismatch (not MTCC)"),
            CertificateError::UnsupportedVersion(v) => {
                write!(f, "unsupported certificate version {v}")
            }
            CertificateError::BadKind(k) => write!(f, "unknown certificate kind byte {k}"),
        }
    }
}

impl std::error::Error for CertificateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_both_kinds() {
        for cert in [
            Certificate::Pass {
                order: vec![2, 0, 1, 3],
            },
            Certificate::Fail {
                cycle: vec![1, 4, 2],
            },
            Certificate::Pass { order: Vec::new() },
        ] {
            let bytes = cert.to_bytes();
            assert_eq!(bytes.len(), cert.encoded_len());
            let (parsed, consumed) = Certificate::from_bytes(&bytes).expect("roundtrip");
            assert_eq!(parsed, cert);
            assert_eq!(consumed, bytes.len());
        }
    }

    #[test]
    fn is_self_delimiting_with_trailing_bytes() {
        let a = Certificate::Fail { cycle: vec![7, 8] };
        let b = Certificate::Pass { order: vec![0, 1] };
        let mut bytes = a.to_bytes();
        b.write_bytes(&mut bytes);
        let (first, consumed) = Certificate::from_bytes(&bytes).expect("first record");
        assert_eq!(first, a);
        let (second, rest) = Certificate::from_bytes(&bytes[consumed..]).expect("second record");
        assert_eq!(second, b);
        assert_eq!(consumed + rest, bytes.len());
    }

    #[test]
    fn encoding_is_byte_stable() {
        let cert = Certificate::Pass { order: vec![3, 1] };
        let expected = [
            b'M', b'T', b'C', b'C', 1, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0, 1, 0, 0, 0,
        ];
        assert_eq!(cert.to_bytes(), expected);
    }

    #[test]
    fn rejects_corrupt_headers() {
        let good = Certificate::Fail { cycle: vec![5] }.to_bytes();
        assert_eq!(
            Certificate::from_bytes(&good[..CERT_HEADER_BYTES - 1]),
            Err(CertificateError::Truncated)
        );
        assert_eq!(
            Certificate::from_bytes(&good[..good.len() - 1]),
            Err(CertificateError::Truncated)
        );
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            Certificate::from_bytes(&bad_magic),
            Err(CertificateError::BadMagic)
        );
        let mut bad_version = good.clone();
        bad_version[4] = 9;
        assert_eq!(
            Certificate::from_bytes(&bad_version),
            Err(CertificateError::UnsupportedVersion(9))
        );
        let mut bad_kind = good;
        bad_kind[6] = 3;
        assert_eq!(
            Certificate::from_bytes(&bad_kind),
            Err(CertificateError::BadKind(3))
        );
    }
}
