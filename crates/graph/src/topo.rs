//! Kahn topological sorting with a store-first tie-break, cycle extraction,
//! and the conventional per-graph checker MTraceCheck is compared against.
//!
//! The tie-break mirrors the behaviour of GNU `tsort` the paper leans on in
//! §8: "tsort unwittingly places store operations prior to load operations
//! since stores do not depend on any load operations in absence of memory
//! barriers". Preferring stores keeps successive sorts structurally similar,
//! which is what lets most ARM graphs re-sort for free (Figure 14).

use crate::{ObservedEdges, TestGraphSpec};
use mtc_isa::OpId;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// A detected memory-consistency violation: a dependency cycle in the
/// constraint graph.
#[derive(Clone, Debug, Eq, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// The operations forming the cycle, in order (the last edge returns to
    /// the first element).
    pub cycle: Vec<OpId>,
}

impl Violation {
    /// Builds the violation record for a raw vertex cycle — the same
    /// mapping the checkers apply to a freshly extracted cycle, so a FAIL
    /// [`Certificate`](crate::Certificate) rehydrates into a record
    /// identical to the one the original check produced.
    pub fn from_cycle(spec: &TestGraphSpec, cycle: Vec<u32>) -> Self {
        violation_from_cycle(spec, cycle)
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("cycle: ")?;
        for (i, op) in self.cycle.iter().enumerate() {
            if i > 0 {
                f.write_str(" -> ")?;
            }
            write!(f, "{op}")?;
        }
        if !self.cycle.is_empty() {
            write!(f, " -> {}", self.cycle[0])?;
        }
        Ok(())
    }
}

/// Work counters for a checking pass. `work` counts visited vertices plus
/// traversed edges — the Θ(V+E) currency of topological sorting, used to
/// report the Figure 9 computation reduction independently of wall clock.
#[derive(Copy, Clone, Debug, Default, Eq, PartialEq, Serialize, Deserialize)]
pub struct CheckStats {
    /// Graphs checked.
    pub graphs: usize,
    /// Graphs found to violate the MCM.
    pub violations: usize,
    /// Vertices visited plus edges traversed.
    pub work: u64,
}

/// Outcome of checking a sequence of executions' graphs.
#[derive(Clone, Debug, Default)]
pub struct CheckOutcome {
    /// Per-graph result, in input order.
    pub results: Vec<Result<(), Violation>>,
    /// Aggregate work counters.
    pub stats: CheckStats,
}

impl CheckOutcome {
    /// Number of graphs that violated the MCM.
    pub fn violation_count(&self) -> usize {
        self.results.iter().filter(|r| r.is_err()).count()
    }
}

/// Read access to one execution's observed out-edges, abstracted so the
/// sorting routines run unchanged over a canonical [`ObservedEdges`] list,
/// a per-push CSR view, or the refcounted delta set — all of which present
/// each vertex's observed successors in ascending order, keeping every
/// traversal (and therefore every verdict, stat, and extracted cycle)
/// identical across representations.
pub(crate) trait ObsAdj {
    /// Calls `f` once per observed successor of `v`, ascending.
    fn for_successors<F: FnMut(u32)>(&self, v: u32, f: F);
    /// Adds each observed edge's contribution to per-vertex in-degrees.
    fn bump_indegrees(&self, indegree: &mut [u32]);
}

impl ObsAdj for ObservedEdges {
    fn for_successors<F: FnMut(u32)>(&self, v: u32, mut f: F) {
        for w in self.successors(v) {
            f(w);
        }
    }

    fn bump_indegrees(&self, indegree: &mut [u32]) {
        for &(_, w) in self.edges() {
            indegree[w as usize] += 1;
        }
    }
}

/// Reusable buffers for repeated Kahn sorts over the same spec. The
/// collective checker sorts millions of near-identical graphs; keeping the
/// in-degree array, the two ready heaps and the order buffer alive across
/// sorts removes every per-sort allocation.
#[derive(Clone, Debug, Default)]
pub(crate) struct SortScratch {
    indegree: Vec<u32>,
    ready_stores: BinaryHeap<Reverse<u32>>,
    ready_others: BinaryHeap<Reverse<u32>>,
    /// The produced topological order (valid after a successful sort).
    pub(crate) order: Vec<u32>,
}

/// Performs a complete Kahn sort of static + observed edges into
/// `scratch.order`.
///
/// Returns the vertices Kahn could not place on failure (every one lies on
/// or leads into a cycle — pass them to [`extract_cycle`]). `work` is
/// incremented by the vertices visited and edges traversed.
pub(crate) fn full_sort_into<A: ObsAdj>(
    spec: &TestGraphSpec,
    obs: &A,
    work: &mut u64,
    scratch: &mut SortScratch,
) -> Result<(), Vec<u32>> {
    let n = spec.num_vertices();
    let indegree = &mut scratch.indegree;
    indegree.clear();
    indegree.extend_from_slice(spec.static_indegree());
    obs.bump_indegrees(indegree);
    // Store-first tie-break, then lowest vertex id: two min-heaps.
    let ready_stores = &mut scratch.ready_stores;
    let ready_others = &mut scratch.ready_others;
    ready_stores.clear();
    ready_others.clear();
    for v in 0..n as u32 {
        if indegree[v as usize] == 0 {
            if spec.is_store(v) {
                ready_stores.push(Reverse(v));
            } else {
                ready_others.push(Reverse(v));
            }
        }
    }
    let order = &mut scratch.order;
    order.clear();
    order.reserve(n);
    while let Some(Reverse(v)) = ready_stores.pop().or_else(|| ready_others.pop()) {
        order.push(v);
        *work += 1;
        let mut relax = |w: u32| {
            *work += 1;
            indegree[w as usize] -= 1;
            if indegree[w as usize] == 0 {
                if spec.is_store(w) {
                    ready_stores.push(Reverse(w));
                } else {
                    ready_others.push(Reverse(w));
                }
            }
        };
        for &w in spec.static_successors(v) {
            relax(w);
        }
        obs.for_successors(v, relax);
    }
    if order.len() == n {
        Ok(())
    } else {
        Err((0..n as u32)
            .filter(|&v| indegree[v as usize] > 0)
            .collect())
    }
}

/// Finds one cycle within `remaining` (vertices that Kahn could not place;
/// every such vertex lies on or leads into a cycle).
///
/// This is the cold path — it only runs on violating graphs — but its DFS
/// order is pinned by the golden vectors: vertices start in `remaining`
/// order and children are visited static-successors-first, ascending.
pub(crate) fn extract_cycle<A: ObsAdj>(
    spec: &TestGraphSpec,
    obs: &A,
    remaining: &[u32],
) -> Vec<u32> {
    debug_assert!(!remaining.is_empty());
    const WHITE: u8 = 0;
    const GREY: u8 = 1;
    const BLACK: u8 = 2;
    let n = spec.num_vertices();
    let mut in_remaining = vec![false; n];
    for &v in remaining {
        in_remaining[v as usize] = true;
    }
    let mut colour = vec![WHITE; n];
    let succs = |v: u32| -> Vec<u32> {
        let mut out = spec.static_successors(v).to_vec();
        obs.for_successors(v, |w| out.push(w));
        out.retain(|&w| in_remaining[w as usize]);
        out
    };
    // Iterative three-colour DFS: a back edge to a grey vertex closes the
    // cycle. The unplaced subgraph always contains one.
    for &start in remaining {
        if colour[start as usize] != WHITE {
            continue;
        }
        let mut stack: Vec<(u32, Vec<u32>, usize)> = vec![(start, succs(start), 0)];
        colour[start as usize] = GREY;
        let mut path = vec![start];
        while let Some((_, children, next)) = stack.last_mut() {
            if *next >= children.len() {
                let (v, _, _) = stack.pop().expect("stack is non-empty");
                colour[v as usize] = BLACK;
                path.pop();
                continue;
            }
            let w = children[*next];
            *next += 1;
            match colour[w as usize] {
                GREY => {
                    let at = path
                        .iter()
                        .position(|&u| u == w)
                        .expect("grey vertices are on the path");
                    return path[at..].to_vec();
                }
                WHITE => {
                    colour[w as usize] = GREY;
                    path.push(w);
                    stack.push((w, succs(w), 0));
                }
                _ => {}
            }
        }
    }
    unreachable!("unplaced Kahn vertices always contain a cycle")
}

pub(crate) fn violation_from_cycle(spec: &TestGraphSpec, cycle: Vec<u32>) -> Violation {
    Violation {
        cycle: cycle.into_iter().map(|v| spec.op(v)).collect(),
    }
}

/// The conventional checker: every constraint graph is topologically sorted
/// from scratch, independently — the baseline MTraceCheck's collective
/// checking is measured against (Figure 9).
pub fn check_conventional(spec: &TestGraphSpec, observations: &[ObservedEdges]) -> CheckOutcome {
    let mut outcome = CheckOutcome::default();
    let mut scratch = SortScratch::default();
    for obs in observations {
        let result = match full_sort_into(spec, obs, &mut outcome.stats.work, &mut scratch) {
            Ok(()) => Ok(()),
            Err(remaining) => {
                outcome.stats.violations += 1;
                let cycle = extract_cycle(spec, obs, &remaining);
                Err(violation_from_cycle(spec, cycle))
            }
        };
        outcome.results.push(result);
        outcome.stats.graphs += 1;
    }
    outcome
}

/// Certified form of [`check_conventional`]: identical verdicts, stats and
/// cycles, plus a [`Certificate`](crate::Certificate) witnessing each
/// graph's verdict — the produced topological order for PASS (materialized
/// by every sort anyway, previously discarded) or the extracted cycle for
/// FAIL.
pub fn check_conventional_certified(
    spec: &TestGraphSpec,
    observations: &[ObservedEdges],
) -> (CheckOutcome, Vec<crate::Certificate>) {
    let mut outcome = CheckOutcome::default();
    let mut certificates = Vec::with_capacity(observations.len());
    let mut scratch = SortScratch::default();
    for obs in observations {
        let result = match full_sort_into(spec, obs, &mut outcome.stats.work, &mut scratch) {
            Ok(()) => {
                certificates.push(crate::Certificate::Pass {
                    order: scratch.order.clone(),
                });
                Ok(())
            }
            Err(remaining) => {
                outcome.stats.violations += 1;
                let cycle = extract_cycle(spec, obs, &remaining);
                certificates.push(crate::Certificate::Fail {
                    cycle: cycle.clone(),
                });
                Err(violation_from_cycle(spec, cycle))
            }
        };
        outcome.results.push(result);
        outcome.stats.graphs += 1;
    }
    (outcome, certificates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CheckOptions;
    use mtc_isa::{litmus, Mcm, OpId, ReadsFrom, Tid, Value};

    fn corr_spec() -> (mtc_isa::Program, TestGraphSpec) {
        let t = litmus::corr();
        let spec = TestGraphSpec::new(&t.program, Mcm::Tso);
        (t.program, spec)
    }

    fn obs(p: &mtc_isa::Program, spec: &TestGraphSpec, reads: &[(u32, u32, u32)]) -> ObservedEdges {
        let mut rf = ReadsFrom::new();
        for &(t, i, v) in reads {
            rf.record(OpId::new(Tid(t), i), Value(v));
        }
        spec.observe(p, &rf, &CheckOptions::default())
    }

    #[test]
    fn valid_execution_sorts() {
        let (p, spec) = corr_spec();
        // Both loads read the store: fine.
        let o = obs(&p, &spec, &[(1, 0, 1), (1, 1, 1)]);
        let outcome = check_conventional(&spec, &[o]);
        assert_eq!(outcome.results, vec![Ok(())]);
        assert_eq!(outcome.stats.graphs, 1);
        assert!(outcome.stats.work > 0);
    }

    #[test]
    fn anti_coherent_reads_cycle() {
        let (p, spec) = corr_spec();
        // First load reads the store, second reads init: rf(st,l1),
        // po(l1,l2), fr(l2,st) — the Figure 13 shape.
        let o = obs(&p, &spec, &[(1, 0, 1), (1, 1, 0)]);
        let outcome = check_conventional(&spec, &[o]);
        assert_eq!(outcome.violation_count(), 1);
        let violation = outcome.results[0].as_ref().unwrap_err();
        assert_eq!(violation.cycle.len(), 3);
        let display = violation.to_string();
        assert!(display.contains("->"), "{display}");
    }

    #[test]
    fn store_first_tie_break() {
        let t = litmus::store_buffering();
        let spec = TestGraphSpec::new(&t.program, Mcm::Tso);
        // Each load reads the other thread's store: only rf edges, so both
        // stores start with zero indegree and the tie-break emits them
        // first (the tsort-like behaviour §8 relies on).
        let o = obs(&t.program, &spec, &[(0, 1, 2), (1, 1, 1)]);
        let mut work = 0;
        let mut scratch = SortScratch::default();
        full_sort_into(&spec, &o, &mut work, &mut scratch).unwrap();
        let order = &scratch.order;
        assert!(spec.is_store(order[0]));
        assert!(spec.is_store(order[1]));
    }

    #[test]
    fn sb_relaxed_is_cyclic_under_sc_but_fine_under_tso() {
        let t = litmus::store_buffering();
        for (mcm, expect_violation) in [(Mcm::Sc, true), (Mcm::Tso, false)] {
            let spec = TestGraphSpec::new(&t.program, mcm);
            let o = obs(&t.program, &spec, &[(0, 1, 0), (1, 1, 0)]);
            let outcome = check_conventional(&spec, &[o]);
            assert_eq!(
                outcome.violation_count() == 1,
                expect_violation,
                "mcm {mcm}"
            );
        }
    }

    #[test]
    fn work_scales_with_graph_count() {
        let (p, spec) = corr_spec();
        let o = obs(&p, &spec, &[(1, 0, 1), (1, 1, 1)]);
        let one = check_conventional(&spec, std::slice::from_ref(&o));
        let three = check_conventional(&spec, &[o.clone(), o.clone(), o]);
        assert_eq!(three.stats.work, 3 * one.stats.work);
    }
}
