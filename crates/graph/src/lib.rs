//! Constraint graphs and consistency checking for MTraceCheck.
//!
//! A constraint graph has one vertex per test instruction and two kinds of
//! edges: *static* edges shared by all executions of a test (MCM program
//! order — derived from the same [`Mcm::orders`](mtc_isa::Mcm::orders)
//! predicate the simulator executes — plus intra-thread write
//! serialization) and *observed* edges unique to one execution (reads-from
//! and from-read, derived from each load's observed value). An execution
//! violates the MCM exactly when its graph is cyclic (§2 of the paper).
//!
//! Two checkers are provided:
//!
//! * [`check_conventional`] — the classic baseline: a full topological sort
//!   per graph;
//! * [`check_collective`] — MTraceCheck's contribution (§4.2): graphs arrive
//!   in ascending-signature order, and each is validated by re-sorting only
//!   the window of the previous topological order disturbed by new backward
//!   edges. [`CollectiveStats`] records the Figure 14 breakdown.
//!
//! [`k_medoids`] implements the §4.1 clustering limit study (Figure 6).
//!
//! # Example
//!
//! ```
//! use mtc_graph::{check_collective, check_conventional, CheckOptions, TestGraphSpec};
//! use mtc_isa::{litmus, Mcm, OpId, ReadsFrom, Tid, Value};
//!
//! let t = litmus::corr();
//! let spec = TestGraphSpec::new(&t.program, Mcm::Tso);
//! // An anti-coherent observation: first load sees the store, second sees
//! // the initial value.
//! let mut rf = ReadsFrom::new();
//! rf.record(OpId::new(Tid(1), 0), Value(1));
//! rf.record(OpId::new(Tid(1), 1), Value::INIT);
//! let obs = spec.observe(&t.program, &rf, &CheckOptions::default());
//!
//! let outcome = check_conventional(&spec, &[obs.clone()]);
//! assert_eq!(outcome.violation_count(), 1);
//! assert_eq!(check_collective(&spec, &[obs]).violation_count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod certificate;
mod collective;
mod delta;
mod diagnose;
mod dot;
mod kmedoids;
mod spec;
mod topo;

pub use certificate::{Certificate, CertificateError, CERT_HEADER_BYTES, CERT_MAGIC, CERT_VERSION};
pub use collective::{
    check_collective, check_collective_certified, check_collective_chunked,
    check_collective_chunked_certified, check_collective_iter, check_collective_iter_certified,
    check_collective_split, check_collective_with_boundaries,
    check_collective_with_boundaries_certified, compare_checkers, even_chunk_lengths, CheckError,
    CollectiveChecker, CollectiveOutcome, CollectiveStats,
};
pub use delta::DeltaObservations;
pub use diagnose::{classify_cycle, explain_violation, EdgeReason, ExplainedEdge};
pub use dot::render_dot;
pub use kmedoids::{k_medoids, KMedoidsResult};
pub use spec::{CheckOptions, EdgeScratch, ObservedEdges, TestGraphSpec};
pub use topo::{
    check_conventional, check_conventional_certified, CheckOutcome, CheckStats, Violation,
};
