//! Scaling of the sharded campaign pipeline over pool workers.
//!
//! The acceptance scenario: a 4-thread / 30-op / 800-iteration campaign,
//! collected at 1, 2 and 4 workers. On a multi-core host the 4-worker run
//! should finish in well under 2/3 the serial wall-clock (>1.5x speedup);
//! on a single hardware thread the worker pool degrades to a slightly
//! noisier serial loop. Each worker count is its own deterministic
//! computation (the shard plan is part of the seed schedule), so the
//! benchmark also exercises the merge path end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mtracecheck::isa::IsaKind;
use mtracecheck::testgen::generate;
use mtracecheck::{Campaign, CampaignConfig, TestConfig};

const ITERATIONS: u64 = 800;

fn campaign(workers: usize) -> Campaign {
    let test = TestConfig::new(IsaKind::Arm, 4, 30, 8).with_seed(42);
    Campaign::new(
        CampaignConfig::new(test, ITERATIONS)
            .with_tests(1)
            .with_workers(workers),
    )
}

fn bench_collect_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_scaling/collect");
    group.throughput(Throughput::Elements(ITERATIONS));
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        let campaign = campaign(workers);
        let program = generate(&campaign.config().test);
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, _| {
            b.iter(|| campaign.collect(&program));
        });
    }
    group.finish();
}

fn bench_full_pipeline_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_scaling/run_test");
    group.throughput(Throughput::Elements(ITERATIONS));
    group.sample_size(10);
    for workers in [1usize, 4] {
        let campaign = campaign(workers);
        let program = generate(&campaign.config().test);
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, _| {
            b.iter(|| campaign.run_test(&program));
        });
    }
    group.finish();
}

fn bench_chunked_checking(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_scaling/chunked_check");
    group.sample_size(10);
    for workers in [1usize, 4] {
        let test = TestConfig::new(IsaKind::Arm, 4, 30, 8).with_seed(42);
        let mut config = CampaignConfig::new(test, ITERATIONS)
            .with_tests(1)
            .with_workers(workers);
        if workers > 1 {
            config = config.with_chunked_checking();
        }
        let campaign = Campaign::new(config);
        let program = generate(&campaign.config().test);
        let log = campaign.collect(&program);
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, _| {
            b.iter(|| campaign.check_log(&log).expect("fresh logs decode"));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_collect_scaling,
    bench_full_pipeline_scaling,
    bench_chunked_checking
);
criterion_main!(benches);
