//! Criterion benchmarks for the signature machinery: runtime encoding
//! (what the instrumented branch chains do), Algorithm-1 decoding, and the
//! ascending signature sort that feeds collective checking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mtracecheck::instr::{analyze, ExecutionSignature, SignatureSchema, SourcePruning};
use mtracecheck::isa::{IsaKind, ReadsFrom};
use mtracecheck::sim::Simulator;
use mtracecheck::testgen::{generate, TestConfig};
use mtracecheck::CampaignConfig;

fn materials(
    test: &TestConfig,
    runs: u64,
) -> (SignatureSchema, Vec<ReadsFrom>, Vec<ExecutionSignature>) {
    let program = generate(test);
    let analysis = analyze(&program, &SourcePruning::none());
    let schema = SignatureSchema::build(&program, &analysis, test.isa.register_bits());
    let campaign = CampaignConfig::new(test.clone(), runs);
    let mut sim = Simulator::new(&program, campaign.system.clone());
    let rfs: Vec<ReadsFrom> = (0..runs)
        .map(|s| sim.run(s).expect("correct hardware").reads_from)
        .collect();
    let sigs = rfs
        .iter()
        .map(|rf| schema.encode(rf).expect("legal execution"))
        .collect();
    (schema, rfs, sigs)
}

fn bench_signatures(c: &mut Criterion) {
    let cases = [
        (
            "ARM-2-50-32",
            TestConfig::new(IsaKind::Arm, 2, 50, 32).with_seed(3),
        ),
        (
            "ARM-7-200-64",
            TestConfig::new(IsaKind::Arm, 7, 200, 64).with_seed(3),
        ),
    ];
    let mut group = c.benchmark_group("signatures");
    for (name, test) in cases {
        let (schema, rfs, sigs) = materials(&test, 512);
        group.throughput(Throughput::Elements(rfs.len() as u64));
        group.bench_with_input(BenchmarkId::new("encode", name), &rfs, |b, rfs| {
            b.iter(|| {
                for rf in rfs {
                    criterion::black_box(schema.encode(rf).expect("legal"));
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("decode", name), &sigs, |b, sigs| {
            b.iter(|| {
                for sig in sigs {
                    criterion::black_box(schema.decode(sig).expect("own signature"));
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("sort", name), &sigs, |b, sigs| {
            b.iter(|| {
                let mut copy = sigs.clone();
                copy.sort_unstable();
                copy.dedup();
                copy.len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_signatures);
criterion_main!(benches);
