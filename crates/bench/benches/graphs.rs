//! Criterion benchmarks for constraint-graph construction and analysis:
//! static-spec building, per-execution observation, edge diffing, and the
//! k-medoids limit study.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mtracecheck::graph::{k_medoids, CheckOptions, TestGraphSpec};
use mtracecheck::isa::{IsaKind, Mcm, Program, ReadsFrom};
use mtracecheck::sim::{Simulator, SystemConfig};
use mtracecheck::testgen::{generate, TestConfig};

fn executions(test: &TestConfig, runs: u64) -> (Program, Vec<ReadsFrom>) {
    let program = generate(test);
    let mut sim = Simulator::new(&program, SystemConfig::sc_reference());
    let rfs = (0..runs)
        .map(|s| sim.run(s).expect("SC runs never crash").reads_from)
        .collect();
    (program, rfs)
}

fn bench_graphs(c: &mut Criterion) {
    let cases = [
        (
            "ARM-2-50-32",
            TestConfig::new(IsaKind::Arm, 2, 50, 32).with_seed(6),
        ),
        (
            "ARM-7-200-64",
            TestConfig::new(IsaKind::Arm, 7, 200, 64).with_seed(6),
        ),
    ];
    let mut group = c.benchmark_group("graphs");
    for (name, test) in &cases {
        let program = generate(test);
        group.bench_with_input(BenchmarkId::new("build_spec", name), &program, |b, p| {
            b.iter(|| TestGraphSpec::new(p, Mcm::Weak));
        });
        let (program, rfs) = executions(test, 64);
        let spec = TestGraphSpec::new(&program, test.mcm);
        group.throughput(Throughput::Elements(rfs.len() as u64));
        group.bench_with_input(BenchmarkId::new("observe", name), &rfs, |b, rfs| {
            b.iter(|| {
                rfs.iter()
                    .map(|rf| spec.observe(&program, rf, &CheckOptions::default()).len())
                    .sum::<usize>()
            });
        });
        let observations: Vec<_> = rfs
            .iter()
            .map(|rf| spec.observe(&program, rf, &CheckOptions::default()))
            .collect();
        group.bench_with_input(BenchmarkId::new("diff", name), &observations, |b, obs| {
            b.iter(|| {
                obs.windows(2)
                    .map(|w| w[1].difference(&w[0]).count())
                    .sum::<usize>()
            });
        });
    }
    group.finish();

    // k-medoids on the §4.1 limit-study population.
    let (_, rfs) = executions(&TestConfig::new(IsaKind::Arm, 2, 50, 32).with_seed(61), 200);
    let mut group = c.benchmark_group("kmedoids");
    for k in [3usize, 10, 30] {
        group.bench_with_input(BenchmarkId::new("cluster", k), &rfs, |b, rfs| {
            b.iter(|| k_medoids(rfs, k, 2017, 20).total_distance);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_graphs);
criterion_main!(benches);
