//! Criterion benchmarks for the execution substrate: iteration throughput
//! of the operational simulator (plain and instrumented) and the
//! exhaustive litmus oracle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mtracecheck::instr::{analyze, SignatureSchema, SourcePruning};
use mtracecheck::isa::{litmus, IsaKind, Mcm};
use mtracecheck::sim::{enumerate_outcomes, Simulator};
use mtracecheck::testgen::{generate, TestConfig};
use mtracecheck::CampaignConfig;

fn bench_simulation(c: &mut Criterion) {
    let cases = [
        (
            "ARM-2-50-32",
            TestConfig::new(IsaKind::Arm, 2, 50, 32).with_seed(4),
        ),
        (
            "ARM-7-200-64",
            TestConfig::new(IsaKind::Arm, 7, 200, 64).with_seed(4),
        ),
        (
            "x86-4-100-64",
            TestConfig::new(IsaKind::X86, 4, 100, 64).with_seed(4),
        ),
    ];
    let mut group = c.benchmark_group("simulation");
    for (name, test) in cases {
        let program = generate(&test);
        let campaign = CampaignConfig::new(test.clone(), 1);
        group.throughput(Throughput::Elements(program.num_memory_ops() as u64));
        group.bench_with_input(BenchmarkId::new("run", name), &program, |b, p| {
            let mut sim = Simulator::new(p, campaign.system.clone());
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                sim.run(seed).expect("correct hardware")
            });
        });
        group.bench_with_input(
            BenchmarkId::new("run_instrumented", name),
            &program,
            |b, p| {
                let analysis = analyze(p, &SourcePruning::none());
                let schema = SignatureSchema::build(p, &analysis, test.isa.register_bits());
                let mut sim = Simulator::new(p, campaign.system.clone());
                sim.instrument(&schema);
                let mut seed = 0u64;
                b.iter(|| {
                    seed = seed.wrapping_add(1);
                    sim.run(seed).expect("correct hardware")
                });
            },
        );
    }
    group.finish();

    let mut oracle = c.benchmark_group("exhaustive_oracle");
    for test in [
        litmus::store_buffering(),
        litmus::message_passing(),
        litmus::iriw(),
    ] {
        oracle.bench_with_input(
            BenchmarkId::new("weak", test.name),
            &test.program,
            |b, p| b.iter(|| enumerate_outcomes(p, Mcm::Weak, 5_000_000).expect("small")),
        );
    }
    oracle.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
