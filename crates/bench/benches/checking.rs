//! Criterion benchmarks for constraint-graph checking: conventional
//! per-graph topological sorting vs MTraceCheck's collective re-sorting
//! (the Figure 9 comparison as a microbenchmark).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mtracecheck::graph::{
    check_collective, check_conventional, CheckOptions, ObservedEdges, TestGraphSpec,
};
use mtracecheck::instr::{analyze, ExecutionSignature, SignatureSchema, SourcePruning};
use mtracecheck::isa::{IsaKind, Program};
use mtracecheck::sim::Simulator;
use mtracecheck::testgen::{generate, TestConfig};
use mtracecheck::CampaignConfig;
use std::collections::BTreeMap;

/// Produces the unique observation set of one scaled-down campaign, in
/// ascending signature order.
fn observations(test: &TestConfig, iterations: u64) -> (Program, Vec<ObservedEdges>) {
    let program = generate(test);
    let analysis = analyze(&program, &SourcePruning::none());
    let schema = SignatureSchema::build(&program, &analysis, test.isa.register_bits());
    let campaign = CampaignConfig::new(test.clone(), iterations);
    let mut sim = Simulator::new(&program, campaign.system.clone());
    let mut unique: BTreeMap<ExecutionSignature, ()> = BTreeMap::new();
    for i in 0..iterations {
        let exec = sim.run(i).expect("correct hardware");
        unique
            .entry(schema.encode(&exec.reads_from).expect("legal"))
            .or_insert(());
    }
    let spec = TestGraphSpec::new(&program, test.mcm);
    let obs = unique
        .keys()
        .map(|sig| {
            let rf = schema.decode(sig).expect("own signature");
            spec.observe(&program, &rf, &CheckOptions::default())
        })
        .collect();
    (program, obs)
}

fn bench_checking(c: &mut Criterion) {
    let cases = [
        (
            "ARM-4-50-64",
            TestConfig::new(IsaKind::Arm, 4, 50, 64).with_seed(9),
        ),
        (
            "x86-4-50-64",
            TestConfig::new(IsaKind::X86, 4, 50, 64).with_seed(9),
        ),
    ];
    let mut group = c.benchmark_group("checking");
    for (name, test) in cases {
        let (program, obs) = observations(&test, 2048);
        let spec = TestGraphSpec::new(&program, test.mcm);
        group.throughput(Throughput::Elements(obs.len() as u64));
        group.bench_with_input(BenchmarkId::new("conventional", name), &obs, |b, obs| {
            b.iter(|| check_conventional(&spec, obs));
        });
        group.bench_with_input(BenchmarkId::new("collective", name), &obs, |b, obs| {
            b.iter(|| check_collective(&spec, obs));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_checking);
criterion_main!(benches);
