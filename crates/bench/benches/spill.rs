//! Cost of bounded-memory signature collection: spill-to-disk external
//! merge vs the unbounded in-memory dedup map.
//!
//! Three operating points on the same 800-iteration campaign:
//! in-memory (no budget), a moderate budget that spills a handful of sorted
//! runs, and a pathological one-entry budget that spills a run per unique
//! signature. The outputs are bit-identical by construction (see
//! `tests/spill_equivalence.rs`); the benchmark measures what that
//! robustness costs in throughput, which EXPERIMENTS.md records.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mtracecheck::isa::IsaKind;
use mtracecheck::testgen::generate;
use mtracecheck::{Campaign, CampaignConfig, TestConfig};

const ITERATIONS: u64 = 800;

fn campaign(budget: Option<u64>) -> Campaign {
    let test = TestConfig::new(IsaKind::Arm, 4, 30, 8).with_seed(42);
    let mut config = CampaignConfig::new(test, ITERATIONS).with_tests(1);
    if let Some(bytes) = budget {
        let dir = std::env::temp_dir().join("mtracecheck-bench-spill");
        std::fs::create_dir_all(&dir).expect("spill dir");
        config = config.with_memory_budget(bytes, dir);
    }
    Campaign::new(config)
}

fn bench_collect_under_budget(c: &mut Criterion) {
    let mut group = c.benchmark_group("spill/collect");
    group.throughput(Throughput::Elements(ITERATIONS));
    group.sample_size(10);
    for (label, budget) in [
        ("unbounded", None),
        ("budget-8k", Some(8 * 1024u64)),
        ("budget-1", Some(1)),
    ] {
        let campaign = campaign(budget);
        let program = generate(&campaign.config().test);
        group.bench_with_input(BenchmarkId::new("budget", label), &budget, |b, _| {
            b.iter(|| campaign.try_collect(&program).expect("spill disk healthy"));
        });
    }
    group.finish();
}

fn bench_streaming_check(c: &mut Criterion) {
    // The streaming check path (budgeted, single-worker) against the
    // materialized batch path (chunked, multi-worker): the two halves of
    // the memory/latency trade the campaign picks between.
    let mut group = c.benchmark_group("spill/run_test");
    group.throughput(Throughput::Elements(ITERATIONS));
    group.sample_size(10);
    for (label, budget) in [("unbounded", None), ("budget-1", Some(1u64))] {
        let campaign = campaign(budget);
        let program = generate(&campaign.config().test);
        group.bench_with_input(BenchmarkId::new("budget", label), &budget, |b, _| {
            b.iter(|| campaign.run_test(&program));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_collect_under_budget, bench_streaming_check);
criterion_main!(benches);
