//! Figure 8: number of unique memory-access interleavings per test
//! configuration, with false-sharing layouts (4 and 16 shared words per
//! cache line) and the OS-perturbation variant.
//!
//! Paper scale: 65 536 iterations × 10 tests per configuration. Default
//! here: scaled down for simulator speed; raise with
//! `--iters 65536 --tests 10`.
//!
//! Run with: `cargo run -p mtc-bench --bin fig08 --release -- [--iters N] [--tests N]`

use mtc_bench::{parse_scale, progress, write_json, Table};
use mtracecheck::{paper_configs, Campaign, CampaignConfig, TestConfig};
use serde::Serialize;

// Fields feed the derived `Serialize` impl; the offline serde stub's
// derive does not read them, so rustc cannot see the use.
#[allow(dead_code)]
#[derive(Serialize)]
struct Fig8Row {
    config: String,
    bare_metal: f64,
    words4: f64,
    words16: f64,
    os: f64,
}

fn mean_unique(test: TestConfig, scale: mtc_bench::RunScale, os: bool) -> f64 {
    let mut config = scale
        .configure(CampaignConfig::new(test, scale.iterations))
        .with_parallel();
    if os {
        config.system.scheduler.os = Some(mtracecheck::sim::OsConfig::default());
    }
    Campaign::new(config).run().mean_unique_signatures()
}

fn main() {
    let scale = parse_scale(2048, 3);
    println!(
        "Figure 8: unique memory-access interleavings ({} iterations x {} tests; paper: 65536 x 10)\n",
        scale.iterations, scale.tests
    );
    let mut table = Table::new(["config", "bare-metal", "4 w/line", "16 w/line", "Linux/OS"]);
    let mut rows = Vec::new();
    for base in paper_configs() {
        progress(&base.name());
        let bare = mean_unique(base.clone(), scale, false);
        let words4 = mean_unique(base.clone().with_words_per_line(4), scale, false);
        let words16 = mean_unique(base.clone().with_words_per_line(16), scale, false);
        let os = mean_unique(base.clone(), scale, true);
        table.row([
            base.name(),
            format!("{bare:.1}"),
            format!("{words4:.1}"),
            format!("{words16:.1}"),
            format!("{os:.1}"),
        ]);
        rows.push(Fig8Row {
            config: base.name(),
            bare_metal: bare,
            words4,
            words16,
            os,
        });
    }
    table.print();
    write_json("fig08", &rows);
    println!(
        "\nExpected shapes (paper): threads dominate diversity; more ops raise it; more\n\
         addresses lower it; false sharing raises it; the OS raises it for 2-threaded\n\
         tests and lowers it for 4/7-threaded ones."
    );
}
