//! Figure 12: code-size comparison — instrumented vs original test
//! routines.
//!
//! Paper: instrumented code is 1.95×–8.16× the original (3.7× mean), still
//! fitting each core's 32 kB L1 instruction cache (ARM-7-200-64 peaks at
//! 189 kB total, ~27 kB per thread).
//!
//! Run with: `cargo run -p mtc-bench --bin fig12 --release -- [--tests N]`

use mtc_bench::{parse_scale, write_json, Table};
use mtracecheck::instr::{analyze, CodeSizeModel, SignatureSchema, SourcePruning};
use mtracecheck::paper_configs;
use mtracecheck::testgen::generate_suite;
use serde::Serialize;

// Fields feed the derived `Serialize` impl; the offline serde stub's
// derive does not read them, so rustc cannot see the use.
#[allow(dead_code)]
#[derive(Serialize)]
struct Fig12Row {
    config: String,
    original_kb: f64,
    instrumented_kb: f64,
    ratio: f64,
    fits_l1: bool,
}

fn main() {
    let scale = parse_scale(0, 10);
    println!(
        "Figure 12: code size, original vs instrumented ({} tests per configuration)\n",
        scale.tests
    );
    let mut table = Table::new([
        "config",
        "original kB",
        "instrumented kB",
        "ratio",
        "fits 32kB L1",
    ]);
    let mut rows = Vec::new();
    let mut ratio_sum = 0.0;
    for test in paper_configs() {
        let programs = generate_suite(&test, scale.tests);
        let model = CodeSizeModel::new(test.isa);
        let mut original = 0.0;
        let mut instrumented = 0.0;
        let mut fits = true;
        for program in &programs {
            let analysis = analyze(program, &SourcePruning::none());
            let schema = SignatureSchema::build(program, &analysis, test.isa.register_bits());
            let size = model.measure(program, &schema);
            original += size.original_bytes as f64;
            instrumented += size.instrumented_bytes as f64;
            fits &= size.fits_in_l1(32 * 1024);
        }
        original /= programs.len() as f64;
        instrumented /= programs.len() as f64;
        let ratio = instrumented / original;
        ratio_sum += ratio;
        table.row([
            test.name(),
            format!("{:.1}", original / 1024.0),
            format!("{:.1}", instrumented / 1024.0),
            format!("{ratio:.2}x"),
            (if fits { "yes" } else { "NO" }).to_owned(),
        ]);
        rows.push(Fig12Row {
            config: test.name(),
            original_kb: original / 1024.0,
            instrumented_kb: instrumented / 1024.0,
            ratio,
            fits_l1: fits,
        });
    }
    table.print();
    println!(
        "\nmean ratio: {:.2}x (paper: 3.7x, range 1.95x-8.16x, all fitting L1)",
        ratio_sum / rows.len() as f64
    );
    write_json("fig12", &rows);
}
