//! Figure 10: device-side execution-time breakdown on the ARM platform —
//! original test execution, signature computation, and on-device signature
//! sorting.
//!
//! The paper reports 0.09–1.1 s per 65 536-iteration run, with signature
//! computation averaging 22 % of original time (1.5 % best, 97.8 % worst)
//! and sorting averaging 38 %. The shape driver: tests with few unique
//! interleavings train the branch predictor almost perfectly.
//!
//! Run with: `cargo run -p mtc-bench --bin fig10 --release -- [--iters N] [--tests N]`

use mtc_bench::{parse_scale, progress, write_json, Table};
use mtracecheck::isa::IsaKind;
use mtracecheck::{paper_configs, Campaign, CampaignConfig};
use serde::Serialize;

/// The ARM cluster runs at 800 MHz in the paper's setup (Table 1).
const ARM_HZ: f64 = 800e6;

// Fields feed the derived `Serialize` impl; the offline serde stub's
// derive does not read them, so rustc cannot see the use.
#[allow(dead_code)]
#[derive(Serialize)]
struct Fig10Row {
    config: String,
    test_seconds: f64,
    signature_seconds: f64,
    sorting_seconds: f64,
    signature_overhead: f64,
    sorting_overhead: f64,
}

fn main() {
    let scale = parse_scale(4096, 2);
    println!(
        "Figure 10: ARM bare-metal execution-time breakdown\n\
         ({} iterations x {} tests; cycles converted at 800 MHz)\n",
        scale.iterations, scale.tests
    );
    let mut table = Table::new([
        "config",
        "test s",
        "signature s",
        "sorting s",
        "sig %",
        "sort %",
    ]);
    let mut rows = Vec::new();
    for test in paper_configs()
        .into_iter()
        .filter(|c| c.isa == IsaKind::Arm)
    {
        progress(&test.name());
        let report = Campaign::new(
            scale
                .configure(CampaignConfig::new(test.clone(), scale.iterations))
                .with_parallel(),
        )
        .run();
        let n = report.tests.len() as f64;
        let test_s: f64 = report
            .tests
            .iter()
            .map(|t| t.timing.test_cycles as f64)
            .sum::<f64>()
            / ARM_HZ
            / n;
        let sig_s: f64 = report
            .tests
            .iter()
            .map(|t| t.timing.signature_cycles as f64)
            .sum::<f64>()
            / ARM_HZ
            / n;
        let sort_s: f64 = report
            .tests
            .iter()
            .map(|t| t.timing.sort_cycles as f64)
            .sum::<f64>()
            / ARM_HZ
            / n;
        table.row([
            test.name(),
            format!("{test_s:.4}"),
            format!("{sig_s:.4}"),
            format!("{sort_s:.4}"),
            format!("{:.1}%", 100.0 * sig_s / test_s),
            format!("{:.1}%", 100.0 * sort_s / test_s),
        ]);
        rows.push(Fig10Row {
            config: test.name(),
            test_seconds: test_s,
            signature_seconds: sig_s,
            sorting_seconds: sort_s,
            signature_overhead: sig_s / test_s,
            sorting_overhead: sort_s / test_s,
        });
    }
    table.print();
    write_json("fig10", &rows);
    println!(
        "\nExpected shapes (paper): low-diversity tests (e.g. ARM-2-50-64) pay ~1.5%\n\
         signature overhead thanks to branch prediction; high-diversity ones\n\
         (ARM-2-200-32) approach ~98% with sorting overhead growing alongside."
    );
}
