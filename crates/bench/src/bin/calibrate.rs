//! Scheduler calibration tool: sweeps the lockstep scheduler's jitter /
//! stall / contention knobs over representative configurations and prints
//! unique-interleaving counts, for tuning the simulator's non-determinism
//! model against Figure 8's trends.
//!
//! Usage: `cargo run -p mtc-bench --bin calibrate --release -- [--iters N]`

use mtc_bench::parse_scale;
use mtracecheck::isa::IsaKind;
use mtracecheck::sim::SystemConfig;
use mtracecheck::{Campaign, CampaignConfig, TestConfig};

fn unique(test: &TestConfig, iters: u64, tune: impl Fn(&mut SystemConfig)) -> f64 {
    let mut config = CampaignConfig::new(test.clone(), iters).with_tests(2);
    tune(&mut config.system);
    Campaign::new(config).run().mean_unique_signatures()
}

fn main() {
    let scale = parse_scale(2048, 2);
    println!("iterations per test: {}\n", scale.iterations);

    // (label, jitter, stall_prob, backoff_cycles); negative = defaults.
    let sweeps: [(&str, f64, f64, u32); 4] = [
        ("j0 s0 b0", 0.0, 0.0, 0),
        ("j0 s.0002 b0", 0.0, 0.0002, 0),
        ("j0 s.0002 b30", 0.0, 0.0002, 30),
        ("j.01 s.0005 b30", 0.01, 0.0005, 30),
    ];

    let cases = [
        ("ARM-2-50-32", TestConfig::new(IsaKind::Arm, 2, 50, 32)),
        ("ARM-2-200-32", TestConfig::new(IsaKind::Arm, 2, 200, 32)),
        ("ARM-2-200-64", TestConfig::new(IsaKind::Arm, 2, 200, 64)),
        ("ARM-4-50-64", TestConfig::new(IsaKind::Arm, 4, 50, 64)),
        ("ARM-7-50-64", TestConfig::new(IsaKind::Arm, 7, 50, 64)),
        ("x86-2-50-32", TestConfig::new(IsaKind::X86, 2, 50, 32)),
        ("x86-4-50-64", TestConfig::new(IsaKind::X86, 4, 50, 64)),
        (
            "x86-4-50-64w16",
            TestConfig::new(IsaKind::X86, 4, 50, 64).with_words_per_line(16),
        ),
    ];

    print!("{:<16}", "config");
    for (label, ..) in &sweeps {
        print!(" {label:>18}");
    }
    println!();
    for (name, test) in cases {
        print!("{name:<16}");
        for &(_, jitter, stall, backoff) in &sweeps {
            let u = unique(&test.clone().with_seed(1), scale.iterations, |sys| {
                if jitter >= 0.0 {
                    sys.scheduler.jitter = jitter;
                    sys.scheduler.stall_prob = stall;
                    sys.scheduler.contention_backoff_cycles = backoff;
                }
            });
            print!(" {u:>18.1}");
        }
        println!();
    }
}
