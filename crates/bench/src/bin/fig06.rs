//! Figure 6: the k-medoids clustering limit study (§4.1).
//!
//! 1 000 executions of two tests on the uniformly-random SC reference
//! simulator; cluster the observed reads-from sets with k-medoids and
//! report the total number of differing reads-from relationships to the
//! closest medoid, for growing k. Test 1 (2 threads) repeats often and
//! clusters well; test 2 (4 threads) is almost all-unique and stays
//! distant — the result that steers the paper away from clustering.
//!
//! Run with: `cargo run -p mtc-bench --bin fig06 --release -- [--iters N]`

use mtc_bench::{parse_scale, progress, write_json, Table};
use mtracecheck::graph::k_medoids;
use mtracecheck::isa::{IsaKind, ReadsFrom};
use mtracecheck::sim::{Simulator, SystemConfig};
use mtracecheck::testgen::{generate, TestConfig};
use serde::Serialize;
use std::collections::BTreeSet;

// Fields feed the derived `Serialize` impl; the offline serde stub's
// derive does not read them, so rustc cannot see the use.
#[allow(dead_code)]
#[derive(Serialize)]
struct Fig6Row {
    test: String,
    unique: usize,
    k: usize,
    total_diff: u64,
}

fn main() {
    let scale = parse_scale(1000, 1);
    let runs = scale.iterations;
    println!("Figure 6: k-medoids clustering of {runs} SC executions (paper: 1000)\n");
    let cases = [
        (
            "test 1 (2-50-32)",
            TestConfig::new(IsaKind::Arm, 2, 50, 32).with_seed(61),
        ),
        (
            "test 2 (4-50-32)",
            TestConfig::new(IsaKind::Arm, 4, 50, 32).with_seed(62),
        ),
    ];
    let ks = [1usize, 2, 3, 5, 10, 30, 100];
    let mut table = Table::new(
        ["test", "unique"]
            .into_iter()
            .map(String::from)
            .chain(ks.iter().map(|k| format!("k={k}"))),
    );
    let mut rows = Vec::new();
    for (name, test) in cases {
        progress(name);
        let program = generate(&test);
        let mut sim = Simulator::new(&program, SystemConfig::sc_reference());
        let executions: Vec<ReadsFrom> = (0..runs)
            .map(|s| sim.run(s).expect("SC runs never crash").reads_from)
            .collect();
        let unique: BTreeSet<_> = executions.iter().cloned().collect();
        let mut cells = vec![name.to_owned(), unique.len().to_string()];
        for &k in &ks {
            let k = k.min(executions.len());
            let result = k_medoids(&executions, k, 2017, 30);
            cells.push(result.total_distance.to_string());
            rows.push(Fig6Row {
                test: name.to_owned(),
                unique: unique.len(),
                k,
                total_diff: result.total_distance,
            });
        }
        table.row(cells);
    }
    table.print();
    write_json("fig06", &rows);
    println!(
        "\nExpected shapes (paper): test 1 (172/1000 unique) drops fast with k;\n\
         test 2 (all unique) keeps many differing reads-from relationships at high k."
    );
}
