//! Campaign perf summary: measures end-to-end campaign throughput, the
//! wall-clock overhead of enabled telemetry, and per-phase latency medians,
//! then drops a machine-readable `BENCH_campaign.json` next to the run.
//!
//! The JSON is hand-formatted (no serde) so the summary survives offline
//! builds where the serde stubs cannot serialize. Usage:
//!
//! ```text
//! campaign_bench [--iters N] [--tests N] [--workers N]
//! ```

use mtc_bench::{parse_scale, progress, Table};
use mtracecheck::isa::IsaKind;
use mtracecheck::{Campaign, CampaignConfig, Telemetry, TelemetryConfig, TestConfig};
use std::fmt::Write as _;
use std::time::Instant;

/// Best-of-N wall time for one campaign run; returns (best µs, report).
fn time_runs<F: FnMut() -> mtracecheck::ConfigReport>(
    runs: usize,
    mut run: F,
) -> (u64, mtracecheck::ConfigReport) {
    let mut best_us = u64::MAX;
    let mut report = None;
    for _ in 0..runs {
        let started = Instant::now();
        let r = run();
        best_us = best_us.min(started.elapsed().as_micros() as u64);
        report = Some(r);
    }
    (best_us, report.expect("runs >= 1"))
}

fn main() {
    let scale = parse_scale(1500, 6);
    let config = || {
        scale
            .configure(CampaignConfig::new(
                TestConfig::new(IsaKind::Arm, 2, 20, 16).with_seed(9),
                scale.iterations,
            ))
            .with_parallel()
    };

    progress("warming up");
    let _ = Campaign::new(config()).run();

    progress("timing the baseline (telemetry off)");
    let (baseline_us, plain) = time_runs(3, || Campaign::new(config()).run());

    progress("timing with trace + metrics sinks attached");
    let dir = std::env::temp_dir().join(format!("mtc-campaign-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    let mut last_telemetry = None;
    let (traced_us, traced) = time_runs(3, || {
        let telemetry = Telemetry::new(TelemetryConfig {
            trace_path: Some(dir.join("trace.jsonl")),
            chrome_path: None,
            metrics_path: Some(dir.join("metrics.prom")),
            progress: false,
        });
        let report = Campaign::new(config())
            .with_telemetry(telemetry.clone())
            .run();
        telemetry.finish().expect("telemetry sinks written");
        last_telemetry = Some(telemetry);
        report
    });
    let snapshot = last_telemetry
        .as_ref()
        .and_then(Telemetry::snapshot)
        .expect("enabled telemetry has a snapshot");
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(traced, plain, "telemetry must not change the report");

    let total_iterations = scale.iterations * scale.tests;
    let iterations_per_sec = total_iterations as f64 / (traced_us.max(1) as f64 / 1e6);
    let overhead_pct = 100.0 * (traced_us as f64 - baseline_us as f64) / baseline_us.max(1) as f64;

    let mut table = Table::new(["phase", "ops", "total us", "p50 us"]);
    let mut phases_json = String::new();
    for phase in snapshot.phases.iter().filter(|p| p.count > 0) {
        let p50 = phase.quantile(0.5).unwrap_or(0);
        table.row([
            phase.phase.to_owned(),
            phase.count.to_string(),
            phase.sum_us.to_string(),
            p50.to_string(),
        ]);
        if !phases_json.is_empty() {
            phases_json.push_str(",\n    ");
        }
        let _ = write!(
            phases_json,
            "{{\"phase\":\"{}\",\"count\":{},\"total_us\":{},\"p50_us\":{}}}",
            phase.phase, phase.count, phase.sum_us, p50
        );
    }
    println!(
        "campaign bench: {} iterations x {} tests, {} worker(s)",
        scale.iterations, scale.tests, scale.workers
    );
    println!(
        "baseline {:.3} s, with telemetry {:.3} s ({overhead_pct:+.2}% overhead)",
        baseline_us as f64 / 1e6,
        traced_us as f64 / 1e6
    );
    println!("throughput: {iterations_per_sec:.0} iterations/sec (telemetry on)");
    table.print();

    let json = format!(
        "{{\n  \"bench\": \"campaign\",\n  \"iterations\": {},\n  \"tests\": {},\n  \
         \"workers\": {},\n  \"baseline_wall_us\": {baseline_us},\n  \
         \"telemetry_wall_us\": {traced_us},\n  \
         \"telemetry_overhead_pct\": {overhead_pct:.2},\n  \
         \"iterations_per_sec\": {iterations_per_sec:.1},\n  \
         \"retries\": {},\n  \"spill_runs\": {},\n  \"phases\": [\n    {phases_json}\n  ]\n}}\n",
        scale.iterations,
        scale.tests,
        scale.workers,
        snapshot.counter("retries"),
        snapshot.counter("spill_runs"),
    );
    let path = "BENCH_campaign.json";
    std::fs::write(path, json).expect("write BENCH_campaign.json");
    eprintln!("(wrote {path})");
}
