//! Campaign perf summary: measures end-to-end campaign throughput, the
//! wall-clock overhead of enabled telemetry, and per-phase latency medians,
//! then drops a machine-readable `BENCH_campaign.json` next to the run.
//!
//! The JSON is hand-formatted (no serde) so the summary survives offline
//! builds where the serde stubs cannot serialize. Usage:
//!
//! ```text
//! campaign_bench [--iters N] [--tests N] [--workers N]
//!                [--gate BASELINE.json] [--gate-factor F]
//! ```
//!
//! `--gate` reads a previously committed `BENCH_campaign.json` and exits
//! non-zero when the direct check-phase p50 regresses more than
//! `--gate-factor` (default 3.0) against it — the CI guardrail for the
//! checking hot path. The factor in force is recorded in the summary JSON.

use mtc_bench::{parse_scale, progress, Table};
use mtracecheck::isa::IsaKind;
use mtracecheck::{
    paper_configs, Campaign, CampaignConfig, Telemetry, TelemetryConfig, TestConfig,
};
use std::fmt::Write as _;
use std::time::Instant;

/// Best-of-N wall time for one campaign run; returns (best µs, report).
fn time_runs<F: FnMut() -> mtracecheck::ConfigReport>(
    runs: usize,
    mut run: F,
) -> (u64, mtracecheck::ConfigReport) {
    let mut best_us = u64::MAX;
    let mut report = None;
    for _ in 0..runs {
        let started = Instant::now();
        let r = run();
        best_us = best_us.min(started.elapsed().as_micros() as u64);
        report = Some(r);
    }
    (best_us, report.expect("runs >= 1"))
}

/// Iterations collected per paper configuration for the direct check-phase
/// measurement. Fixed (not `--iters`) so numbers are comparable across
/// bench runs and against the committed baseline.
const CHECK_BENCH_ITERS: u64 = 1000;

/// One paper configuration's direct check-phase measurement.
struct CheckTiming {
    name: String,
    unique: usize,
    best_us: u64,
}

/// Directly times the host-side check phase — signature decode, observed
/// edges, collective constraint-graph check — over the paper's 21
/// configurations: one collected log per config, best-of-3 `check_log`
/// wall time. The telemetry histograms above bucket per-push samples at
/// log2 microsecond resolution, which saturates at the bottom bucket for
/// fast pushes; this is the exact end-to-end number regression gating
/// needs.
fn check_phase_bench() -> Vec<CheckTiming> {
    paper_configs()
        .into_iter()
        .map(|test| {
            let campaign = Campaign::new(CampaignConfig::new(test, CHECK_BENCH_ITERS));
            let program = mtracecheck::testgen::generate(&campaign.config().test);
            let log = campaign.collect_serial(&program);
            let mut best_us = u64::MAX;
            let mut unique = 0;
            for _ in 0..3 {
                let started = Instant::now();
                let report = campaign.check_log(&log).expect("fresh logs decode");
                best_us = best_us.min(started.elapsed().as_micros() as u64);
                unique = report.unique_signatures;
            }
            CheckTiming {
                name: campaign.config().test.name(),
                unique,
                best_us,
            }
        })
        .collect()
}

/// Renders the Unix epoch-seconds timestamp as a `YYYY-MM-DD` date
/// (proleptic Gregorian; Howard Hinnant's `civil_from_days` algorithm) —
/// the history line's human-readable axis, computed without any date
/// dependency.
fn epoch_date(secs: u64) -> String {
    let days = (secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let year = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { year + 1 } else { year };
    format!("{year:04}-{month:02}-{day:02}")
}

/// Appends one `{commit, date, check_p50_us, iterations_per_sec}` line to
/// `BENCH_history.jsonl` (created if absent) — the longitudinal record
/// `mtracecheck report` and CI trend plots read. The commit comes from
/// `BENCH_COMMIT` or `GITHUB_SHA` when set (CI), else `local`.
fn append_history(check_p50_us: u64, iterations_per_sec: f64) {
    let commit = std::env::var("BENCH_COMMIT")
        .or_else(|_| std::env::var("GITHUB_SHA"))
        .unwrap_or_else(|_| "local".to_owned());
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let line = format!(
        "{{\"commit\":\"{}\",\"date\":\"{}\",\"check_p50_us\":{check_p50_us},\
         \"iterations_per_sec\":{iterations_per_sec:.1}}}\n",
        commit.replace(['"', '\\'], "_"),
        epoch_date(secs),
    );
    let path = "BENCH_history.jsonl";
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()));
    match appended {
        Ok(()) => eprintln!("(appended {path})"),
        Err(e) => eprintln!("warning: could not append {path}: {e}"),
    }
}

/// Pulls the `check_p50_us` field out of a previously written
/// `BENCH_campaign.json` (hand-parsed; the serde stubs cannot
/// deserialize).
fn read_baseline_check_p50(path: &str) -> Option<u64> {
    let text = std::fs::read_to_string(path).ok()?;
    let key = "\"check_p50_us\":";
    let at = text.find(key)?;
    let digits: String = text[at + key.len()..]
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

fn main() {
    let scale = parse_scale(1500, 6);
    let config = || {
        scale
            .configure(CampaignConfig::new(
                TestConfig::new(IsaKind::Arm, 2, 20, 16).with_seed(9),
                scale.iterations,
            ))
            .with_parallel()
    };

    progress("warming up");
    let _ = Campaign::new(config()).run();

    progress("timing the baseline (telemetry off)");
    let (baseline_us, plain) = time_runs(3, || Campaign::new(config()).run());

    progress("timing with trace + metrics sinks attached");
    let dir = std::env::temp_dir().join(format!("mtc-campaign-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    let mut last_telemetry = None;
    let (traced_us, traced) = time_runs(3, || {
        let telemetry = Telemetry::new(TelemetryConfig {
            trace_path: Some(dir.join("trace.jsonl")),
            metrics_path: Some(dir.join("metrics.prom")),
            ..TelemetryConfig::default()
        });
        let report = Campaign::new(config())
            .with_telemetry(telemetry.clone())
            .run();
        telemetry.finish().expect("telemetry sinks written");
        last_telemetry = Some(telemetry);
        report
    });
    let snapshot = last_telemetry
        .as_ref()
        .and_then(Telemetry::snapshot)
        .expect("enabled telemetry has a snapshot");
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(traced, plain, "telemetry must not change the report");

    let total_iterations = scale.iterations * scale.tests;
    let iterations_per_sec = total_iterations as f64 / (traced_us.max(1) as f64 / 1e6);
    let overhead_pct = 100.0 * (traced_us as f64 - baseline_us as f64) / baseline_us.max(1) as f64;

    let mut table = Table::new(["phase", "ops", "total us", "p50 us"]);
    let mut phases_json = String::new();
    for phase in snapshot.phases.iter().filter(|p| p.count > 0) {
        let p50 = phase.quantile(0.5).unwrap_or(0);
        table.row([
            phase.phase.to_owned(),
            phase.count.to_string(),
            phase.sum_us.to_string(),
            p50.to_string(),
        ]);
        if !phases_json.is_empty() {
            phases_json.push_str(",\n    ");
        }
        let _ = write!(
            phases_json,
            "{{\"phase\":\"{}\",\"count\":{},\"total_us\":{},\"p50_us\":{}}}",
            phase.phase, phase.count, phase.sum_us, p50
        );
    }
    println!(
        "campaign bench: {} iterations x {} tests, {} worker(s)",
        scale.iterations, scale.tests, scale.workers
    );
    println!(
        "baseline {:.3} s, with telemetry {:.3} s ({overhead_pct:+.2}% overhead)",
        baseline_us as f64 / 1e6,
        traced_us as f64 / 1e6
    );
    println!("throughput: {iterations_per_sec:.0} iterations/sec (telemetry on)");
    table.print();

    progress("timing the check phase over the 21 paper configurations");
    let check = check_phase_bench();
    let mut sorted_us: Vec<u64> = check.iter().map(|c| c.best_us).collect();
    sorted_us.sort_unstable();
    let check_p50_us = sorted_us[sorted_us.len() / 2];
    let check_total_us: u64 = sorted_us.iter().sum();
    let mut check_table = Table::new(["config", "unique sigs", "check us"]);
    let mut check_json = String::new();
    for c in &check {
        check_table.row([c.name.clone(), c.unique.to_string(), c.best_us.to_string()]);
        if !check_json.is_empty() {
            check_json.push_str(",\n    ");
        }
        let _ = write!(
            check_json,
            "{{\"config\":\"{}\",\"unique\":{},\"check_us\":{}}}",
            c.name, c.unique, c.best_us
        );
    }
    check_table.print();
    println!(
        "check phase ({CHECK_BENCH_ITERS} iters/config): p50 {check_p50_us} us, \
         total {check_total_us} us over {} configs",
        check.len()
    );

    // Regression gate: compare the measured check-phase p50 against a
    // committed baseline summary. The default 3x headroom absorbs
    // shared-runner noise while still catching a hot-path regression
    // outright; `--gate-factor` tightens or relaxes it per pipeline. The
    // baseline is read before the results file is rewritten — the gate path
    // and the output path are usually the same file.
    let args: Vec<String> = std::env::args().collect();
    let gate = args
        .iter()
        .position(|a| a == "--gate")
        .and_then(|i| args.get(i + 1));
    let gate_factor: f64 = args
        .iter()
        .position(|a| a == "--gate-factor")
        .and_then(|i| args.get(i + 1))
        .map_or(Ok(3.0), |v| {
            v.parse()
                .map_err(|e| format!("--gate-factor {v}: {e}"))
                .and_then(|f: f64| {
                    if f.is_finite() && f > 0.0 {
                        Ok(f)
                    } else {
                        Err(format!("--gate-factor {v}: must be finite and positive"))
                    }
                })
        })
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(1);
        });
    let gate_baseline = gate.map(|path| read_baseline_check_p50(path));

    let json = format!(
        "{{\n  \"bench\": \"campaign\",\n  \"iterations\": {},\n  \"tests\": {},\n  \
         \"workers\": {},\n  \"baseline_wall_us\": {baseline_us},\n  \
         \"telemetry_wall_us\": {traced_us},\n  \
         \"telemetry_overhead_pct\": {overhead_pct:.2},\n  \
         \"iterations_per_sec\": {iterations_per_sec:.1},\n  \
         \"retries\": {},\n  \"spill_runs\": {},\n  \
         \"check_bench_iters\": {CHECK_BENCH_ITERS},\n  \
         \"gate_factor\": {gate_factor},\n  \
         \"check_p50_us\": {check_p50_us},\n  \
         \"check_total_us\": {check_total_us},\n  \
         \"check_configs\": [\n    {check_json}\n  ],\n  \
         \"phases\": [\n    {phases_json}\n  ]\n}}\n",
        scale.iterations,
        scale.tests,
        scale.workers,
        snapshot.counter("retries"),
        snapshot.counter("spill_runs"),
    );
    let path = "BENCH_campaign.json";
    std::fs::write(path, json).expect("write BENCH_campaign.json");
    eprintln!("(wrote {path})");
    append_history(check_p50_us, iterations_per_sec);

    if let Some(gate) = gate {
        let Some(Some(baseline)) = gate_baseline else {
            eprintln!("gate: no check_p50_us in {gate}");
            std::process::exit(1);
        };
        let limit = baseline as f64 * gate_factor;
        if check_p50_us as f64 > limit {
            eprintln!(
                "gate: check-phase p50 {check_p50_us} us exceeds {gate_factor}x the \
                 committed baseline ({baseline} us) — hot-path regression"
            );
            std::process::exit(1);
        }
        println!(
            "gate: check-phase p50 {check_p50_us} us within {gate_factor}x of \
             baseline {baseline} us"
        );
    }
}
