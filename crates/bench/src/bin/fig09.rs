//! Figure 9: MCM violation-checking speedup — collective topological
//! re-sorting vs conventional per-graph sorting, on the unique graphs of
//! every test configuration.
//!
//! The paper reports normalized sorting time (collective / conventional),
//! 9.4 %–44.9 % with an 81 % average reduction. Two collective variants are
//! measured: the paper-faithful single re-sorting window (leading to
//! trailing boundary) and the split-window optimization (disjoint merged
//! backward-edge intervals re-sorted independently), which is what recovers
//! the paper's ratios on the all-unique, high-diversity configurations.
//!
//! Run with: `cargo run -p mtc-bench --bin fig09 --release -- [--iters N] [--tests N]`

use mtc_bench::{parse_scale, progress, write_json, Table};
use mtracecheck::graph::{
    check_collective, check_collective_split, check_conventional, CheckOptions, TestGraphSpec,
};
use mtracecheck::instr::{analyze, ExecutionSignature, SignatureSchema, SourcePruning};
use mtracecheck::sim::Simulator;
use mtracecheck::testgen::generate_suite;
use mtracecheck::{paper_configs, CampaignConfig};
use serde::Serialize;
use std::collections::BTreeMap;
use std::time::Instant;

// Fields feed the derived `Serialize` impl; the offline serde stub's
// derive does not read them, so rustc cannot see the use.
#[allow(dead_code)]
#[derive(Serialize)]
struct Fig9Row {
    config: String,
    unique_graphs: usize,
    conventional_ms: f64,
    single_ms: f64,
    split_ms: f64,
    single_work_ratio: f64,
    split_work_ratio: f64,
}

fn main() {
    let scale = parse_scale(4096, 2);
    println!(
        "Figure 9: topological-sorting time, collective vs conventional\n\
         ({} iterations x {} tests per configuration)\n",
        scale.iterations, scale.tests
    );
    let mut table = Table::new([
        "config",
        "graphs",
        "conv ms",
        "single ms",
        "split ms",
        "single work",
        "split work",
    ]);
    let mut rows = Vec::new();
    let mut ratio_sum = 0.0;
    for test in paper_configs() {
        progress(&test.name());
        let campaign = CampaignConfig::new(test.clone(), scale.iterations);
        let programs = generate_suite(&test, scale.tests);
        let (mut conv_ms, mut single_ms, mut split_ms) = (0.0, 0.0, 0.0);
        let mut work = (0u64, 0u64, 0u64);
        let mut graphs = 0usize;
        for program in &programs {
            let analysis = analyze(program, &SourcePruning::none());
            let schema = SignatureSchema::build(program, &analysis, test.isa.register_bits());
            let mut sim = Simulator::new(program, campaign.system.clone());
            let mut unique: BTreeMap<ExecutionSignature, ()> = BTreeMap::new();
            for i in 0..scale.iterations {
                let seed = test
                    .seed
                    .wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let exec = sim.run(seed).expect("correct hardware");
                let sig = schema.encode(&exec.reads_from).expect("legal run");
                unique.entry(sig).or_insert(());
            }
            let spec = TestGraphSpec::new(program, test.mcm);
            let observations: Vec<_> = unique
                .keys()
                .map(|sig| {
                    let rf = schema.decode(sig).expect("own signature");
                    spec.observe(program, &rf, &CheckOptions::default())
                })
                .collect();
            graphs += observations.len();

            let t0 = Instant::now();
            let conventional = check_conventional(&spec, &observations);
            let t1 = Instant::now();
            let single = check_collective(&spec, &observations);
            let t2 = Instant::now();
            let split = check_collective_split(&spec, &observations);
            let t3 = Instant::now();
            conv_ms += (t1 - t0).as_secs_f64() * 1e3;
            single_ms += (t2 - t1).as_secs_f64() * 1e3;
            split_ms += (t3 - t2).as_secs_f64() * 1e3;
            work.0 += conventional.stats.work;
            work.1 += single.stats.work;
            work.2 += split.stats.work;
            assert_eq!(conventional.violation_count(), 0);
            assert_eq!(single.violation_count(), 0);
            assert_eq!(split.violation_count(), 0);
        }
        let single_ratio = work.1 as f64 / work.0.max(1) as f64;
        let split_ratio = work.2 as f64 / work.0.max(1) as f64;
        ratio_sum += split_ratio;
        table.row([
            test.name(),
            graphs.to_string(),
            format!("{conv_ms:.2}"),
            format!("{single_ms:.2}"),
            format!("{split_ms:.2}"),
            format!("{:.1}%", 100.0 * single_ratio),
            format!("{:.1}%", 100.0 * split_ratio),
        ]);
        rows.push(Fig9Row {
            config: test.name(),
            unique_graphs: graphs,
            conventional_ms: conv_ms,
            single_ms,
            split_ms,
            single_work_ratio: single_ratio,
            split_work_ratio: split_ratio,
        });
    }
    table.print();
    let mean = 100.0 * ratio_sum / rows.len() as f64;
    println!(
        "\nmean split-window collective/conventional work: {mean:.1}%\n\
         (paper: 19% of conventional, i.e. an 81% average reduction, range\n\
         9.4%-44.9%; smaller win on x86 due to more re-sorting)"
    );
    write_json("fig09", &rows);
}
