//! Ablation studies for the §8 extensions and design choices DESIGN.md
//! calls out:
//!
//! 1. **Static pruning** — bounding candidate sets by an LSQ-skew window
//!    shrinks signatures and instrumented code, at the cost of runtime
//!    assertion misses when the bound is violated.
//! 2. **Program merging** — fusing independent segments (false-sharing-only
//!    overlap) grows tests linearly while keeping per-segment signature
//!    structure.
//! 3. **Register-flushing perturbation** — the baseline instrumentation
//!    shifts the interleaving population it is supposed to observe; the
//!    signature approach does not.
//! 4. **Fence density** — barriers suppress observable reorderings.
//!
//! Run with: `cargo run -p mtc-bench --bin ablation --release -- [--iters N]`

use mtc_bench::{parse_scale, write_json, Table};
use mtracecheck::instr::{analyze, CodeSizeModel, EncodeError, SignatureSchema, SourcePruning};
use mtracecheck::isa::IsaKind;
use mtracecheck::sim::{Simulator, SystemConfig};
use mtracecheck::testgen::{generate, merge_programs, TestConfig};
use mtracecheck::{Campaign, CampaignConfig};
use serde::Serialize;
use std::collections::BTreeSet;

#[derive(Serialize, Default)]
struct AblationResults {
    pruning: Vec<(String, u64, f64, u64)>,
    merging: Vec<(usize, usize, usize)>,
    flush_jaccard: f64,
    fence_density: Vec<(f64, f64)>,
}

fn pruning_study(iters: u64, results: &mut AblationResults) {
    println!("## Static pruning (§8): ARM-4-100-16, {iters} iterations");
    let test = TestConfig::new(IsaKind::Arm, 4, 100, 16).with_seed(3);
    let program = generate(&test);
    let mut table = Table::new(["LSQ window", "sig bytes", "code ratio", "assertion misses"]);
    for (label, pruning) in [
        ("none".to_owned(), SourcePruning::none()),
        ("32".to_owned(), SourcePruning::with_lsq_window(32)),
        ("16".to_owned(), SourcePruning::with_lsq_window(16)),
        ("8".to_owned(), SourcePruning::with_lsq_window(8)),
        ("2".to_owned(), SourcePruning::with_lsq_window(2)),
    ] {
        let analysis = analyze(&program, &pruning);
        let schema = SignatureSchema::build(&program, &analysis, 32);
        let code = CodeSizeModel::new(IsaKind::Arm).measure(&program, &schema);
        let mut sim = Simulator::new(&program, SystemConfig::arm_soc());
        let mut misses = 0u64;
        for seed in 0..iters {
            let exec = sim.run(seed).expect("correct hardware");
            if let Err(EncodeError::UnexpectedValue { .. }) = schema.encode(&exec.reads_from) {
                misses += 1;
            }
        }
        table.row([
            label.clone(),
            schema.signature_bytes().to_string(),
            format!("{:.2}x", code.ratio()),
            misses.to_string(),
        ]);
        results
            .pruning
            .push((label, schema.signature_bytes() as u64, code.ratio(), misses));
    }
    table.print();
    println!("=> pruning trades signature/code size against runtime assertion misses\n");
}

fn merging_study(results: &mut AblationResults) {
    println!("## Program merging (§8): k segments of ARM-2-50-16");
    let mut table = Table::new(["segments", "memory ops", "sig bytes"]);
    for k in [1usize, 2, 4, 8] {
        let segments: Vec<_> = (0..k)
            .map(|i| generate(&TestConfig::new(IsaKind::Arm, 2, 50, 16).with_seed(i as u64)))
            .collect();
        let merged = merge_programs(&segments).expect("mergeable");
        let analysis = analyze(&merged, &SourcePruning::none());
        let schema = SignatureSchema::build(&merged, &analysis, 32);
        table.row([
            k.to_string(),
            merged.num_memory_ops().to_string(),
            schema.signature_bytes().to_string(),
        ]);
        results
            .merging
            .push((k, merged.num_memory_ops(), schema.signature_bytes()));
    }
    table.print();
    println!(
        "=> signature size grows linearly with segments (no cross-segment\n\
         candidate blow-up): merging scales tests without exploding signatures\n"
    );
}

fn flush_study(iters: u64, results: &mut AblationResults) {
    println!("## Register-flushing perturbation: ARM-2-50-32, {iters} iterations");
    let program = generate(&TestConfig::new(IsaKind::Arm, 2, 50, 32).with_seed(6));
    let mut plain = Simulator::new(&program, SystemConfig::arm_soc());
    let mut flushing = Simulator::new(&program, SystemConfig::arm_soc());
    flushing.set_flush_overlay(true);
    let mut plain_set = BTreeSet::new();
    let mut flush_set = BTreeSet::new();
    for seed in 0..iters {
        plain_set.insert(plain.run(seed).expect("ok").reads_from);
        flush_set.insert(flushing.run(seed).expect("ok").reads_from);
    }
    let intersection = plain_set.intersection(&flush_set).count();
    let union = plain_set.union(&flush_set).count();
    let jaccard = intersection as f64 / union.max(1) as f64;
    println!(
        "uninstrumented: {} unique; flushing: {} unique; population overlap (Jaccard): {:.2}",
        plain_set.len(),
        flush_set.len(),
        jaccard
    );
    println!(
        "=> the flushing baseline observes a materially different interleaving\n\
         population than the uninstrumented test — the intrusiveness the paper's\n\
         signature approach eliminates\n"
    );
    results.flush_jaccard = jaccard;
}

fn fence_density_study(iters: u64, results: &mut AblationResults) {
    println!("## Fence density: ARM-2-100-16, {iters} iterations");
    let mut table = Table::new(["fence fraction", "mean unique interleavings"]);
    for fraction in [0.0, 0.1, 0.3, 0.6] {
        let test = TestConfig::new(IsaKind::Arm, 2, 100, 16)
            .with_seed(8)
            .with_fence_fraction(fraction);
        let report = Campaign::new(CampaignConfig::new(test, iters).with_tests(2)).run();
        assert_eq!(report.failing_tests(), 0, "fences never create violations");
        table.row([
            format!("{fraction:.1}"),
            format!("{:.1}", report.mean_unique_signatures()),
        ]);
        results
            .fence_density
            .push((fraction, report.mean_unique_signatures()));
    }
    table.print();
    println!("=> barriers suppress observable reordering diversity, as expected\n");
}

fn main() {
    let scale = parse_scale(2048, 1);
    let mut results = AblationResults::default();
    pruning_study(scale.iterations, &mut results);
    merging_study(&mut results);
    flush_study(scale.iterations, &mut results);
    fence_density_study(scale.iterations, &mut results);
    write_json("ablation", &results);
}
