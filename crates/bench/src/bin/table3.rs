//! Table 3: bug-injection detection results (§7).
//!
//! Three historical gem5 bugs are injected into the simulated platform and
//! hunted with the paper's per-bug test configurations. The paper runs 101
//! random tests × 1 024 iterations per bug; defaults here are scaled down —
//! raise with `--tests 101 --iters 1024`.
//!
//! Run with: `cargo run -p mtc-bench --bin table3 --release -- [--iters N] [--tests N]`

use mtc_bench::{parse_scale, progress, write_json, Table};
use mtracecheck::isa::IsaKind;
use mtracecheck::sim::{BugKind, CacheConfig, SystemConfig};
use mtracecheck::{Campaign, CampaignConfig, TestConfig};
use serde::Serialize;

// Fields feed the derived `Serialize` impl; the offline serde stub's
// derive does not read them, so rustc cannot see the use.
#[allow(dead_code)]
#[derive(Serialize)]
struct Table3Row {
    bug: String,
    config: String,
    detecting_tests: usize,
    total_tests: usize,
    violating_signatures: usize,
    crashed_tests: usize,
}

fn hunting_system(bug: BugKind, tiny_cache: bool) -> SystemConfig {
    // The default lockstep scheduler reproduces gem5-like exposure rates:
    // bug 1's narrow S->M race stays rare, bug 2 shows up in roughly half
    // the tests, bug 3 crashes everything.
    let mut system = SystemConfig::gem5_x86().with_bug(bug);
    if tiny_cache {
        system = system.with_cache(CacheConfig::l1_1k());
    }
    system
}

fn main() {
    let scale = parse_scale(1024, 21);
    println!(
        "Table 3: bug detection ({} tests x {} iterations per bug; paper: 101 x 1024)\n",
        scale.tests, scale.iterations
    );
    let cases = [
        (
            "bug 1 (ld->ld, protocol)",
            TestConfig::new(IsaKind::X86, 4, 50, 8).with_words_per_line(4),
            hunting_system(BugKind::LoadLoadCoherence, true),
        ),
        (
            "bug 2 (ld->ld, LSQ)",
            TestConfig::new(IsaKind::X86, 7, 200, 32).with_words_per_line(16),
            hunting_system(BugKind::LoadLoadLsq, false),
        ),
        (
            "bug 3 (protocol race)",
            TestConfig::new(IsaKind::X86, 7, 200, 64).with_words_per_line(4),
            hunting_system(BugKind::ProtocolRace { prob: 0.02 }, true),
        ),
    ];
    let mut table = Table::new(["bug", "test configuration", "detection results"]);
    let mut rows = Vec::new();
    for (label, test, system) in cases {
        progress(label);
        let report = Campaign::new(
            scale
                .configure(CampaignConfig::new(
                    test.clone().with_seed(7),
                    scale.iterations,
                ))
                .with_system(system),
        )
        .run();
        let crashed = report.tests.iter().filter(|t| t.crashes > 0).count();
        let detecting = report.failing_tests();
        let signatures = report.total_violations()
            + report
                .tests
                .iter()
                .map(|t| t.assertion_failures as usize)
                .sum::<usize>();
        let summary = if crashed == report.tests.len() && crashed > 0 {
            "all tests (crash)".to_owned()
        } else {
            format!("{detecting} tests, {signatures} signatures")
        };
        table.row([label.to_owned(), test.name(), summary]);
        rows.push(Table3Row {
            bug: label.to_owned(),
            config: test.name(),
            detecting_tests: detecting,
            total_tests: report.tests.len(),
            violating_signatures: signatures,
            crashed_tests: crashed,
        });
        // Print one Figure 13-style cycle when available.
        if let Some(record) = report
            .tests
            .iter()
            .flat_map(|t| t.violations.iter())
            .find(|v| v.violation.is_some())
        {
            println!(
                "  example (signature {} seen {}x): {}",
                record.signature,
                record.occurrences,
                record.violation.as_ref().expect("filtered")
            );
        }
    }
    table.print();
    write_json("table3", &rows);
    println!(
        "\nPaper: bug 1 -> 1 test / 29 signatures; bug 2 -> 11 tests / 12 signatures;\n\
         bug 3 -> all tests crash. Expect the same ranking: bug 1 rare, bug 2 easier,\n\
         bug 3 catastrophic."
    );
}
