//! §6.1 iteration-count sensitivity: the fraction of iterations that yield
//! unique interleavings *decreases* as the iteration count grows.
//!
//! Paper data point (ARM-2-200-32): 35 679/65 536 unique (54 %) vs
//! 311 512/1 048 576 (30 %). This binary sweeps iteration counts on the
//! same configuration and reports the unique fraction and the Good–Turing
//! discovery probability — the "should I keep running this test?" signal.
//!
//! Run with: `cargo run -p mtc-bench --bin coverage --release -- [--iters MAX]`

use mtc_bench::{parse_scale, write_json, Table};
use mtracecheck::isa::IsaKind;
use mtracecheck::testgen::generate;
use mtracecheck::{Campaign, CampaignConfig, TestConfig};
use serde::Serialize;

// Fields feed the derived `Serialize` impl; the offline serde stub's
// derive does not read them, so rustc cannot see the use.
#[allow(dead_code)]
#[derive(Serialize)]
struct CoverageRow {
    iterations: u64,
    unique: u64,
    unique_fraction: f64,
    discovery_probability: f64,
}

fn main() {
    let scale = parse_scale(16384, 1);
    let test = TestConfig::new(IsaKind::Arm, 2, 200, 32).with_seed(61);
    println!(
        "Unique-interleaving saturation for {} (paper: 54% unique at 65536,\n\
         30% at 1048576)\n",
        test.name()
    );
    // One collection at the maximum count gives every prefix point.
    let campaign = Campaign::new(
        CampaignConfig::new(test.clone(), scale.iterations).with_workers(scale.workers),
    );
    let program = generate(&test);
    let log = campaign.collect(&program);
    let mut table = Table::new([
        "iterations",
        "unique",
        "unique fraction",
        "discovery probability",
    ]);
    let mut rows = Vec::new();
    for p in log.coverage.points() {
        if p.iterations < 64 {
            continue;
        }
        let fraction = p.unique as f64 / p.iterations as f64;
        table.row([
            p.iterations.to_string(),
            p.unique.to_string(),
            format!("{:.1}%", 100.0 * fraction),
            if p.iterations == log.coverage.iterations() {
                format!("{:.1}%", 100.0 * log.coverage.discovery_probability())
            } else {
                "-".to_owned()
            },
        ]);
        rows.push(CoverageRow {
            iterations: p.iterations,
            unique: p.unique,
            unique_fraction: fraction,
            discovery_probability: if p.iterations == log.coverage.iterations() {
                log.coverage.discovery_probability()
            } else {
                f64::NAN
            },
        });
    }
    table.print();
    println!(
        "\nfinal: {}\nsaturated at 10% threshold: {}",
        log.coverage,
        log.coverage.saturated(0.10)
    );
    write_json("coverage", &rows);
    println!("\nExpected shape (paper §6.1): the unique fraction falls as iterations grow.");
}
