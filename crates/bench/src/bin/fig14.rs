//! Figure 14: breakdown of collective graph checking — how many graphs
//! needed a complete sort, no re-sorting, or incremental re-sorting, and
//! what fraction of vertices the incremental windows touched.
//!
//! Paper: ARM graphs mostly skip re-sorting entirely (the tsort-like
//! store-first order is robust when the weak MCM contributes few static
//! edges); on x86, 82 %–100 % of graphs re-sort incrementally, touching
//! 21 %–78 % of vertices — which is why Figure 9's win is smaller there.
//!
//! Run with: `cargo run -p mtc-bench --bin fig14 --release -- [--iters N] [--tests N]`

use mtc_bench::{parse_scale, progress, write_json, Table};
use mtracecheck::{paper_configs, Campaign, CampaignConfig};
use serde::Serialize;

// Fields feed the derived `Serialize` impl; the offline serde stub's
// derive does not read them, so rustc cannot see the use.
#[allow(dead_code)]
#[derive(Serialize)]
struct Fig14Row {
    config: String,
    graphs: usize,
    complete_pct: f64,
    no_resort_pct: f64,
    incremental_pct: f64,
    affected_vertices_pct: f64,
}

fn main() {
    let scale = parse_scale(4096, 2);
    println!(
        "Figure 14: collective-checking breakdown ({} iterations x {} tests)\n",
        scale.iterations, scale.tests
    );
    let mut table = Table::new([
        "config",
        "graphs",
        "complete",
        "no re-sort",
        "incremental",
        "affected vertices",
    ]);
    let mut rows = Vec::new();
    for test in paper_configs() {
        progress(&test.name());
        let report = Campaign::new(
            scale
                .configure(CampaignConfig::new(test.clone(), scale.iterations))
                .with_parallel(),
        )
        .run();
        let mut graphs = 0usize;
        let (mut complete, mut no_resort, mut incremental) = (0usize, 0usize, 0usize);
        let (mut resorted, mut incr_vertices) = (0u64, 0u64);
        for t in &report.tests {
            graphs += t.collective.graphs;
            complete += t.collective.complete;
            no_resort += t.collective.no_resort;
            incremental += t.collective.incremental;
            resorted += t.collective.resorted_vertices;
            incr_vertices += t.collective.incremental_vertices;
        }
        let pct = |x: usize| 100.0 * x as f64 / graphs.max(1) as f64;
        let affected = 100.0 * resorted as f64 / incr_vertices.max(1) as f64;
        table.row([
            test.name(),
            graphs.to_string(),
            format!("{:.1}%", pct(complete)),
            format!("{:.1}%", pct(no_resort)),
            format!("{:.1}%", pct(incremental)),
            format!("{affected:.1}%"),
        ]);
        rows.push(Fig14Row {
            config: test.name(),
            graphs,
            complete_pct: pct(complete),
            no_resort_pct: pct(no_resort),
            incremental_pct: pct(incremental),
            affected_vertices_pct: affected,
        });
    }
    table.print();
    write_json("fig14", &rows);
    println!(
        "\nExpected shapes (paper): x86 configurations re-sort 82-100% of graphs\n\
         incrementally, touching 21-78% of vertices, and the fraction grows with\n\
         diversity. (The paper's ARM no-re-sort shortcut does not reproduce here:\n\
         our decoded graphs always carry from-read edges, so incremental windows —\n\
         not skipped sorts — carry the collective win; see EXPERIMENTS.md.)"
    );
}
