//! Figure 11: intrusiveness of verification — memory accesses unrelated to
//! the test, normalized to the register-flushing baseline, with the mean
//! execution-signature size annotated per configuration.
//!
//! Paper: 3.9 %–11.5 %, 7 % on average (a 93 % perturbation reduction);
//! signature sizes 8.4 B (ARM-2-50-32) to 324 B (ARM-7-200-64).
//!
//! Run with: `cargo run -p mtc-bench --bin fig11 --release -- [--tests N]`

use mtc_bench::{parse_scale, write_json, Table};
use mtracecheck::instr::{analyze, IntrusivenessReport, SignatureSchema, SourcePruning};
use mtracecheck::paper_configs;
use mtracecheck::testgen::generate_suite;
use serde::Serialize;

// Fields feed the derived `Serialize` impl; the offline serde stub's
// derive does not read them, so rustc cannot see the use.
#[allow(dead_code)]
#[derive(Serialize)]
struct Fig11Row {
    config: String,
    signature_bytes: f64,
    flush_bytes: f64,
    normalized: f64,
}

fn main() {
    let scale = parse_scale(0, 10);
    println!(
        "Figure 11: memory accesses unrelated to the test, vs register flushing\n\
         ({} tests per configuration)\n",
        scale.tests
    );
    let mut table = Table::new(["config", "sig bytes", "flush bytes", "normalized"]);
    let mut rows = Vec::new();
    let mut norm_sum = 0.0;
    for test in paper_configs() {
        let programs = generate_suite(&test, scale.tests);
        let mut sig = 0.0;
        let mut flush = 0.0;
        for program in &programs {
            let analysis = analyze(program, &SourcePruning::none());
            let schema = SignatureSchema::build(program, &analysis, test.isa.register_bits());
            let report = IntrusivenessReport::measure(program, &schema);
            sig += report.signature_bytes as f64;
            flush += report.flush_bytes as f64;
        }
        sig /= programs.len() as f64;
        flush /= programs.len() as f64;
        let normalized = sig / flush;
        norm_sum += normalized;
        table.row([
            test.name(),
            format!("{sig:.1}"),
            format!("{flush:.0}"),
            format!("{:.1}%", 100.0 * normalized),
        ]);
        rows.push(Fig11Row {
            config: test.name(),
            signature_bytes: sig,
            flush_bytes: flush,
            normalized,
        });
    }
    table.print();
    let mean = norm_sum / rows.len() as f64;
    println!(
        "\nmean: {:.1}% of the flushing baseline => a {:.0}% perturbation reduction\n\
         (paper: 7% mean, 93% reduction; grows with contention)",
        100.0 * mean,
        100.0 * (1.0 - mean)
    );
    write_json("fig11", &rows);
}
