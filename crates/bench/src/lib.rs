//! Shared plumbing for the MTraceCheck figure/table regeneration binaries.
//!
//! Every binary in `src/bin` regenerates one table or figure of the paper
//! (see `DESIGN.md` for the index). The paper runs 65 536 iterations × 10
//! tests per configuration on native silicon; on a simulator that scale is
//! hours, so the binaries default to scaled-down runs and accept
//! `--iters N` / `--tests N` to approach paper scale. All binaries print a
//! human-readable table and drop a machine-readable JSON copy under
//! `experiments/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::Serialize;
use std::io::Write as _;

/// Scaled-run parameters parsed from the command line.
#[derive(Copy, Clone, Debug)]
pub struct RunScale {
    /// Loop iterations per test (`--iters`, paper: 65 536).
    pub iterations: u64,
    /// Distinct tests per configuration (`--tests`, paper: 10).
    pub tests: u64,
    /// Iteration shards / pool workers per test (`--workers`, default 1 —
    /// the paper-faithful serial loop; 0 = all host threads). Note the
    /// shard plan is part of the computation: results are deterministic per
    /// `workers` value but differ across values.
    pub workers: usize,
}

impl RunScale {
    /// Applies the scale to a campaign configuration: test count plus the
    /// worker-pool width for iteration sharding.
    pub fn configure(&self, config: mtracecheck::CampaignConfig) -> mtracecheck::CampaignConfig {
        config.with_tests(self.tests).with_workers(self.workers)
    }
}

/// Parses `--iters N`, `--tests N` and `--workers N` from
/// `std::env::args`, with binary-specific defaults.
pub fn parse_scale(default_iters: u64, default_tests: u64) -> RunScale {
    let args: Vec<String> = std::env::args().collect();
    let grab = |flag: &str, default: u64| -> u64 {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    RunScale {
        iterations: grab("--iters", default_iters),
        tests: grab("--tests", default_tests),
        workers: grab("--workers", 1) as usize,
    }
}

/// A simple fixed-width table printer for figure rows.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Renders the table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                } else {
                    widths.push(cell.len());
                }
            }
        }
        let render = |cells: &[String]| {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let w = widths.get(i).copied().unwrap_or(cell.len());
                if i == 0 {
                    line.push_str(&format!("{cell:<w$}"));
                } else {
                    line.push_str(&format!("{cell:>w$}"));
                }
            }
            line
        };
        println!("{}", render(&self.headers));
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        );
        for row in &self.rows {
            println!("{}", render(row));
        }
    }
}

/// Writes `value` as pretty JSON to `experiments/<name>.json` (best
/// effort — the experiment still succeeds if the directory is not
/// writable).
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("experiments");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    let Ok(json) = serde_json::to_string_pretty(value) else {
        return;
    };
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = f.write_all(json.as_bytes());
        eprintln!("(wrote {})", path.display());
    }
}

/// Progress note to stderr (keeps stdout clean for the table).
pub fn progress(msg: &str) {
    eprintln!("... {msg}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["config", "value"]);
        t.row(["ARM-2-50-32", "11"]);
        t.row(["x86-4-200-64-longer", "4600"]);
        t.print(); // smoke: no panic on ragged widths
        assert_eq!(t.rows.len(), 2);
    }

    #[test]
    fn parse_scale_defaults() {
        let s = parse_scale(1234, 5);
        assert_eq!(s.iterations, 1234);
        assert_eq!(s.tests, 5);
        assert_eq!(s.workers, 1, "serial by default");
    }

    #[test]
    fn configure_applies_tests_and_workers() {
        use mtracecheck::isa::IsaKind;
        use mtracecheck::{CampaignConfig, TestConfig};
        let scale = RunScale {
            iterations: 100,
            tests: 4,
            workers: 3,
        };
        let config = scale.configure(CampaignConfig::new(
            TestConfig::new(IsaKind::Arm, 2, 10, 8),
            100,
        ));
        assert_eq!(config.tests, 4);
        assert_eq!(config.workers, 3);
    }
}
