//! Observable outcome of one test execution: the reads-from relation.
//!
//! Because every store writes a globally unique value, the complete
//! memory-ordering observation of a test run is captured by which value each
//! load returned (§2 of the paper: "two executions have experienced distinct
//! memory access interleavings when they exhibit at least one different
//! reads-from relationship"). [`ReadsFrom`] is that record, and it is the
//! currency every MTraceCheck stage trades in: the simulator produces it,
//! the instrumentation encodes it into a signature, the decoder recovers it,
//! and the constraint-graph builder consumes it.

use crate::{OpId, Program, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The value observed by every load of one test execution.
///
/// Keys are load [`OpId`]s; values are the loaded [`Value`]s
/// ([`Value::INIT`] or a unique store value).
///
/// ```
/// use mtc_isa::{OpId, ReadsFrom, StoreId, Tid, Value};
///
/// let mut rf = ReadsFrom::new();
/// rf.record(OpId::new(Tid(0), 1), Value::from(StoreId(3)));
/// rf.record(OpId::new(Tid(1), 0), Value::INIT);
/// assert_eq!(rf.len(), 2);
/// assert_eq!(rf.value_of(OpId::new(Tid(0), 1)), Some(Value(3)));
/// ```
#[derive(Clone, Debug, Default, Eq, PartialEq, Ord, PartialOrd, Hash, Serialize, Deserialize)]
pub struct ReadsFrom {
    observed: BTreeMap<OpId, Value>,
}

impl ReadsFrom {
    /// Creates an empty record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `load` observed `value`. Returns the previously recorded
    /// value if the load was already present.
    pub fn record(&mut self, load: OpId, value: Value) -> Option<Value> {
        self.observed.insert(load, value)
    }

    /// The value observed by `load`, if recorded.
    pub fn value_of(&self, load: OpId) -> Option<Value> {
        self.observed.get(&load).copied()
    }

    /// The store op that `load` read from, or `None` when the load is
    /// unrecorded or read the initial value.
    ///
    /// # Panics
    ///
    /// Panics if the recorded value does not belong to `program`.
    pub fn source_op(&self, program: &Program, load: OpId) -> Option<OpId> {
        self.value_of(load)?
            .store_id()
            .map(|id| program.store_op(id))
    }

    /// Number of recorded loads.
    pub fn len(&self) -> usize {
        self.observed.len()
    }

    /// Returns `true` when no loads are recorded.
    pub fn is_empty(&self) -> bool {
        self.observed.is_empty()
    }

    /// Iterates over `(load, observed value)` pairs in `(thread,
    /// program-order)` order.
    pub fn iter(&self) -> impl Iterator<Item = (OpId, Value)> + '_ {
        self.observed.iter().map(|(&op, &v)| (op, v))
    }

    /// Number of `(load, value)` entries on which `self` and `other`
    /// disagree (entries present in exactly one count as differing) — the
    /// k-medoids distance metric of §4.1.
    pub fn diff_count(&self, other: &ReadsFrom) -> usize {
        let mut diff = 0;
        for (op, v) in self.iter() {
            if other.value_of(op) != Some(v) {
                diff += 1;
            }
        }
        for (op, _) in other.iter() {
            if self.value_of(op).is_none() {
                diff += 1;
            }
        }
        diff
    }
}

impl FromIterator<(OpId, Value)> for ReadsFrom {
    fn from_iter<I: IntoIterator<Item = (OpId, Value)>>(iter: I) -> Self {
        ReadsFrom {
            observed: iter.into_iter().collect(),
        }
    }
}

impl Extend<(OpId, Value)> for ReadsFrom {
    fn extend<I: IntoIterator<Item = (OpId, Value)>>(&mut self, iter: I) {
        self.observed.extend(iter);
    }
}

impl fmt::Display for ReadsFrom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, (op, v)) in self.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{op}<-{v}")?;
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Addr, MemoryLayout, ProgramBuilder, StoreId, Tid};

    #[test]
    fn record_and_query() {
        let mut rf = ReadsFrom::new();
        let op = OpId::new(Tid(0), 0);
        assert_eq!(rf.record(op, Value(1)), None);
        assert_eq!(rf.record(op, Value(2)), Some(Value(1)));
        assert_eq!(rf.value_of(op), Some(Value(2)));
        assert_eq!(rf.len(), 1);
        assert!(!rf.is_empty());
    }

    #[test]
    fn source_op_resolves_store() {
        let mut b = ProgramBuilder::new(1, MemoryLayout::no_false_sharing());
        b.thread(0).store(Addr(0));
        b.thread(1).load(Addr(0));
        let p = b.build().unwrap();
        let load = OpId::new(Tid(1), 0);
        let mut rf = ReadsFrom::new();
        rf.record(load, Value::from(StoreId(1)));
        assert_eq!(rf.source_op(&p, load), Some(OpId::new(Tid(0), 0)));
        rf.record(load, Value::INIT);
        assert_eq!(rf.source_op(&p, load), None);
    }

    #[test]
    fn diff_count_is_symmetric_and_zero_on_equal() {
        let a: ReadsFrom = [
            (OpId::new(Tid(0), 0), Value(1)),
            (OpId::new(Tid(0), 1), Value(0)),
        ]
        .into_iter()
        .collect();
        let mut b = a.clone();
        assert_eq!(a.diff_count(&b), 0);
        b.record(OpId::new(Tid(0), 1), Value(2));
        assert_eq!(a.diff_count(&b), 1);
        assert_eq!(b.diff_count(&a), 1);
        b.record(OpId::new(Tid(1), 0), Value(1));
        assert_eq!(a.diff_count(&b), 2);
        assert_eq!(b.diff_count(&a), 2);
    }

    #[test]
    fn display_lists_entries() {
        let rf: ReadsFrom = [(OpId::new(Tid(0), 3), Value(0))].into_iter().collect();
        assert_eq!(rf.to_string(), "{T0.3<-init}");
    }
}
