//! Memory consistency models and their program-order rules.
//!
//! Both the simulator (`mtc-sim`) and the constraint-graph checker
//! (`mtc-graph`) consume the *same* pairwise ordering predicate
//! [`Mcm::orders`], so the executions the simulator can produce and the
//! executions the checker accepts are derived from one definition — a checker
//! bug cannot hide behind a divergent model.

use crate::Instr;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The instruction-set flavour of a test, used for code-size and encoding
/// models and for the paper's configuration naming (`ARM-2-50-32`,
/// `x86-4-100-64`, …).
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Serialize, Deserialize)]
pub enum IsaKind {
    /// 64-bit x86 (the paper's Core 2 Quad desktop). Variable-length
    /// encoding, 64-bit registers, TSO.
    X86,
    /// 32-bit ARMv7 (the paper's Exynos 5422 SoC). Fixed 4-byte encoding,
    /// 32-bit registers, weakly ordered.
    Arm,
}

impl IsaKind {
    /// The register width in bits, which bounds each signature word (§3.2).
    pub fn register_bits(self) -> u32 {
        match self {
            IsaKind::X86 => 64,
            IsaKind::Arm => 32,
        }
    }

    /// The memory consistency model this ISA mandates.
    pub fn default_mcm(self) -> Mcm {
        match self {
            IsaKind::X86 => Mcm::Tso,
            IsaKind::Arm => Mcm::Weak,
        }
    }

    /// The configuration-name prefix used by the paper (`x86` / `ARM`).
    pub fn prefix(self) -> &'static str {
        match self {
            IsaKind::X86 => "x86",
            IsaKind::Arm => "ARM",
        }
    }
}

impl fmt::Display for IsaKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.prefix())
    }
}

impl FromStr for IsaKind {
    type Err = IsaKindParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "x86" | "x86-64" | "x86_64" => Ok(IsaKind::X86),
            "arm" | "armv7" => Ok(IsaKind::Arm),
            _ => Err(IsaKindParseError {
                input: s.to_owned(),
            }),
        }
    }
}

mod parse_error {
    use std::fmt;

    /// Error returned when parsing an [`IsaKind`](super::IsaKind) from a
    /// string fails.
    #[derive(Clone, Debug, Eq, PartialEq)]
    pub struct IsaKindParseError {
        pub(crate) input: String,
    }

    impl fmt::Display for IsaKindParseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(
                f,
                "unknown ISA name `{}` (expected `x86` or `ARM`)",
                self.input
            )
        }
    }

    impl std::error::Error for IsaKindParseError {}
}

pub use parse_error::IsaKindParseError;

/// A memory consistency model, defined by which program-order pairs of
/// instructions must appear in order in the global commit order.
///
/// The models match §2 of the paper:
///
/// * [`Mcm::Sc`] — sequential consistency; no reordering at all. Used by the
///   limit-study simulator of §4.1.
/// * [`Mcm::Tso`] — total store order (x86, SPARC): the only relaxation is
///   that a load may complete before a program-order-earlier store (store
///   buffering with forwarding).
/// * [`Mcm::Weak`] — an ARMv7/RMO-like weakly ordered model: accesses to
///   *different* addresses reorder freely; per-location coherence keeps
///   same-address `load->load`, `load->store` and `store->store` ordered,
///   and a same-address `store->load` may still be satisfied early by
///   forwarding. Fences restore full order.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Serialize, Deserialize)]
pub enum Mcm {
    /// Sequential consistency.
    Sc,
    /// Total store order (x86-TSO).
    Tso,
    /// Weakly-ordered, ARM-like model.
    Weak,
}

impl Mcm {
    /// All models, strongest first.
    pub const ALL: [Mcm; 3] = [Mcm::Sc, Mcm::Tso, Mcm::Weak];

    /// Returns `true` if the model requires `earlier` (program order) to be
    /// globally ordered before `later`.
    ///
    /// Fences order against the access kinds they cover on both sides
    /// (everything for [`FenceKind::Full`](crate::FenceKind::Full), stores
    /// for store-store barriers, loads for load-load barriers); ordering
    /// *across* a fence follows transitively (a covered access after the
    /// fence may not commit before it, and the fence may not commit before
    /// covered accesses preceding it), so a pairwise predicate is
    /// sufficient for both the simulator's ready-set rule and the checker's
    /// program-order edges.
    pub fn orders(self, earlier: &Instr, later: &Instr) -> bool {
        // Fence ordering is kind-based and model-independent.
        match (earlier, later) {
            (Instr::Fence(k), other) | (other, Instr::Fence(k)) => {
                return k.orders_with(other);
            }
            _ => {}
        }
        match self {
            Mcm::Sc => true,
            Mcm::Tso => {
                // The sole TSO relaxation: store followed by load (to any
                // address — same-address pairs are satisfied by forwarding).
                !(earlier.is_store() && later.is_load())
            }
            Mcm::Weak => {
                match (earlier.addr(), later.addr()) {
                    (Some(a), Some(b)) if a == b => {
                        // Per-location coherence: only store->load may pass
                        // (satisfied early out of the store buffer).
                        !(earlier.is_store() && later.is_load())
                    }
                    _ => false,
                }
            }
        }
    }

    /// Returns `true` if the model allows *some* reordering for at least one
    /// pair of memory operations (i.e. the model is weaker than SC).
    pub fn is_relaxed(self) -> bool {
        !matches!(self, Mcm::Sc)
    }
}

impl fmt::Display for Mcm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mcm::Sc => f.write_str("SC"),
            Mcm::Tso => f.write_str("TSO"),
            Mcm::Weak => f.write_str("Weak"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Addr, FenceKind, StoreId};

    fn ld(a: u32) -> Instr {
        Instr::Load { addr: Addr(a) }
    }
    fn st(a: u32) -> Instr {
        Instr::Store {
            addr: Addr(a),
            value: StoreId(1),
        }
    }
    fn fence() -> Instr {
        Instr::Fence(FenceKind::Full)
    }

    #[test]
    fn sc_orders_everything() {
        for x in [ld(0), st(1)] {
            for y in [ld(2), st(3)] {
                assert!(Mcm::Sc.orders(&x, &y));
            }
        }
    }

    #[test]
    fn tso_relaxes_only_store_load() {
        assert!(!Mcm::Tso.orders(&st(0), &ld(1)));
        assert!(!Mcm::Tso.orders(&st(0), &ld(0)), "same-address forwards");
        assert!(Mcm::Tso.orders(&ld(0), &ld(1)));
        assert!(Mcm::Tso.orders(&ld(0), &st(1)));
        assert!(Mcm::Tso.orders(&st(0), &st(1)));
    }

    #[test]
    fn weak_orders_same_address_only() {
        assert!(!Mcm::Weak.orders(&ld(0), &ld(1)));
        assert!(!Mcm::Weak.orders(&st(0), &st(1)));
        assert!(!Mcm::Weak.orders(&ld(0), &st(1)));
        assert!(!Mcm::Weak.orders(&st(0), &ld(1)));
        // Per-location coherence:
        assert!(Mcm::Weak.orders(&ld(0), &ld(0)));
        assert!(Mcm::Weak.orders(&st(0), &st(0)));
        assert!(Mcm::Weak.orders(&ld(0), &st(0)));
        assert!(!Mcm::Weak.orders(&st(0), &ld(0)), "forwarding passes");
    }

    #[test]
    fn fences_order_in_every_model() {
        for mcm in Mcm::ALL {
            assert!(mcm.orders(&fence(), &ld(0)));
            assert!(mcm.orders(&st(0), &fence()));
        }
    }

    #[test]
    fn isa_kind_properties() {
        assert_eq!(IsaKind::X86.register_bits(), 64);
        assert_eq!(IsaKind::Arm.register_bits(), 32);
        assert_eq!(IsaKind::X86.default_mcm(), Mcm::Tso);
        assert_eq!(IsaKind::Arm.default_mcm(), Mcm::Weak);
        assert_eq!("x86".parse::<IsaKind>().unwrap(), IsaKind::X86);
        assert_eq!("ARM".parse::<IsaKind>().unwrap(), IsaKind::Arm);
        assert!("mips".parse::<IsaKind>().is_err());
    }

    #[test]
    fn stronger_models_order_more() {
        // Every pair ordered by TSO is ordered by SC; every pair ordered by
        // Weak is ordered by TSO (on the instruction shapes we generate).
        let instrs = [ld(0), ld(1), st(0), st(1)];
        for x in &instrs {
            for y in &instrs {
                if Mcm::Weak.orders(x, y) {
                    assert!(Mcm::Tso.orders(x, y), "{x} -> {y}");
                }
                if Mcm::Tso.orders(x, y) {
                    assert!(Mcm::Sc.orders(x, y) || (x.is_store() && y.is_load()));
                }
            }
        }
    }
}
