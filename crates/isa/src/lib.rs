//! Abstract ISA, test-program representation, and memory consistency models
//! for the MTraceCheck post-silicon validation framework.
//!
//! This crate defines the vocabulary shared by every other MTraceCheck crate:
//!
//! * [`Program`] — a multi-threaded test program made of word-sized loads,
//!   stores and fences over a small set of shared memory locations. Every
//!   store writes a globally unique value ([`StoreId`]) so that the store
//!   observed by any load can be identified from the loaded value alone
//!   (the classic TSOtool/MTraceCheck trick).
//! * [`Mcm`] — the memory consistency model under validation (SC, TSO, or a
//!   weakly-ordered ARM-like model), expressed as a pairwise program-order
//!   rule that both the simulator and the constraint-graph checker consume,
//!   so the two can never disagree about which reorderings are legal.
//! * [`MemoryLayout`] — the mapping from shared words to cache lines, used to
//!   model false sharing (1, 4 or 16 shared words per 64-byte line in the
//!   paper's evaluation).
//! * [`litmus`] — a library of classic litmus tests (SB, MP, LB, IRIW, …)
//!   used by examples and conformance tests.
//!
//! # Example
//!
//! ```
//! use mtc_isa::{Addr, Mcm, MemoryLayout, ProgramBuilder};
//!
//! // The two-threaded store-buffering (SB) shape from Figure 2 of the paper.
//! let mut b = ProgramBuilder::new(2, MemoryLayout::no_false_sharing());
//! b.thread(0).load(Addr(0)).store(Addr(1));
//! b.thread(1).load(Addr(1)).store(Addr(0));
//! let program = b.build()?;
//!
//! assert_eq!(program.num_threads(), 2);
//! assert_eq!(program.num_loads(), 2);
//! // Under TSO the only relaxation is store->load; load->store stays ordered.
//! assert!(Mcm::Tso.orders(&program.threads()[0][0], &program.threads()[0][1]));
//! # Ok::<(), mtc_isa::ProgramError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exec;
mod layout;
mod mcm;
mod op;
mod parse;
mod program;

pub mod litmus;

pub use exec::ReadsFrom;
pub use layout::MemoryLayout;
pub use mcm::{IsaKind, IsaKindParseError, Mcm};
pub use op::{Addr, FenceKind, Instr, OpId, StoreId, Tid, Value};
pub use parse::{parse_program, ParseProgramError};
pub use program::{Program, ProgramBuilder, ProgramError, ThreadBuilder};
