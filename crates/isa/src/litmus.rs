//! Classic litmus tests expressed as [`Program`]s.
//!
//! These small, named shapes are the standard vocabulary of memory-model
//! validation (§9 of the paper cites several litmus suites). MTraceCheck's
//! contribution is validating much larger constrained-random tests, but the
//! litmus library is invaluable for conformance-testing the simulator and
//! the checker: each test has well-known allowed/forbidden outcomes under
//! SC, TSO and weak models.
//!
//! Addresses: `X = Addr(0)`, `Y = Addr(1)` (and `Z = Addr(2)` where used).
//!
//! ```
//! use mtc_isa::litmus;
//!
//! let sb = litmus::store_buffering();
//! assert_eq!(sb.program.num_threads(), 2);
//! assert!(litmus::all().iter().any(|t| t.name == "SB"));
//! ```

use crate::{Addr, MemoryLayout, Program, ProgramBuilder};

/// A named litmus test with its program and a human-readable description of
/// the interesting (relaxed) outcome.
#[derive(Clone, Debug)]
pub struct LitmusTest {
    /// Conventional short name (SB, MP, LB, …).
    pub name: &'static str,
    /// What the relaxed outcome is and where it is allowed.
    pub description: &'static str,
    /// The test program.
    pub program: Program,
}

const X: Addr = Addr(0);
const Y: Addr = Addr(1);
const Z: Addr = Addr(2);

fn builder(num_addrs: u32) -> ProgramBuilder {
    ProgramBuilder::new(num_addrs, MemoryLayout::no_false_sharing())
}

/// SB (store buffering), the Figure 2 shape: each thread stores to one
/// location then loads the other. Both loads reading the initial value is
/// forbidden under SC, allowed under TSO and weaker models.
pub fn store_buffering() -> LitmusTest {
    let mut b = builder(2);
    b.thread(0).store(X).load(Y);
    b.thread(1).store(Y).load(X);
    LitmusTest {
        name: "SB",
        description: "both loads read init: forbidden under SC, allowed under TSO/Weak",
        program: b.build().expect("litmus programs are well-formed"),
    }
}

/// SB with a full fence between the store and the load in each thread;
/// the relaxed outcome becomes forbidden everywhere.
pub fn store_buffering_fenced() -> LitmusTest {
    let mut b = builder(2);
    b.thread(0).store(X).fence().load(Y);
    b.thread(1).store(Y).fence().load(X);
    LitmusTest {
        name: "SB+fences",
        description: "both loads read init: forbidden under every model",
        program: b.build().expect("litmus programs are well-formed"),
    }
}

/// MP (message passing): thread 0 writes data then flag; thread 1 reads flag
/// then data. Seeing the flag but stale data is forbidden under SC and TSO,
/// allowed under weak models.
pub fn message_passing() -> LitmusTest {
    let mut b = builder(2);
    b.thread(0).store(X).store(Y);
    b.thread(1).load(Y).load(X);
    LitmusTest {
        name: "MP",
        description: "flag seen but data stale: forbidden under SC/TSO, allowed under Weak",
        program: b.build().expect("litmus programs are well-formed"),
    }
}

/// MP with fences between the two accesses of each thread; the stale-data
/// outcome becomes forbidden everywhere.
pub fn message_passing_fenced() -> LitmusTest {
    let mut b = builder(2);
    b.thread(0).store(X).fence().store(Y);
    b.thread(1).load(Y).fence().load(X);
    LitmusTest {
        name: "MP+fences",
        description: "flag seen but data stale: forbidden under every model",
        program: b.build().expect("litmus programs are well-formed"),
    }
}

/// LB (load buffering): each thread loads one location then stores the
/// other. Both loads observing the other thread's store is forbidden under
/// SC and TSO (loads do not pass later stores), allowed under weak models.
pub fn load_buffering() -> LitmusTest {
    let mut b = builder(2);
    b.thread(0).load(X).store(Y);
    b.thread(1).load(Y).store(X);
    LitmusTest {
        name: "LB",
        description: "both loads read the other store: forbidden under SC/TSO, allowed under Weak",
        program: b.build().expect("litmus programs are well-formed"),
    }
}

/// IRIW (independent reads of independent writes): two writer threads, two
/// reader threads observing the writes in opposite orders — forbidden under
/// multi-copy-atomic models like SC/TSO.
pub fn iriw() -> LitmusTest {
    let mut b = builder(2);
    b.thread(0).store(X);
    b.thread(1).store(Y);
    b.thread(2).load(X).load(Y);
    b.thread(3).load(Y).load(X);
    LitmusTest {
        name: "IRIW",
        description: "readers disagree on write order: forbidden under SC/TSO",
        program: b.build().expect("litmus programs are well-formed"),
    }
}

/// IRIW with full fences between each reader's loads: the readers'
/// observations are now ordered, so disagreement on the order of the two
/// independent writes requires non-multiple-copy-atomic stores — forbidden
/// under SC/TSO and under any multiple-copy-atomic weak machine, yet
/// allowed on real (non-MCA) ARMv7.
pub fn iriw_fenced() -> LitmusTest {
    let mut b = builder(2);
    b.thread(0).store(X);
    b.thread(1).store(Y);
    b.thread(2).load(X).fence().load(Y);
    b.thread(3).load(Y).fence().load(X);
    LitmusTest {
        name: "IRIW+fences",
        description: "fenced readers disagree on write order: requires non-MCA stores",
        program: b.build().expect("litmus programs are well-formed"),
    }
}

/// CoRR (coherence of read-read): two program-ordered loads of the same
/// location must not observe values in anti-coherence order. Forbidden under
/// every model; the manifestation of the paper's injected bugs 1 and 2
/// (Figure 13).
pub fn corr() -> LitmusTest {
    let mut b = builder(1);
    b.thread(0).store(X);
    b.thread(1).load(X).load(X);
    LitmusTest {
        name: "CoRR",
        description: "second same-address load reads older value: forbidden everywhere",
        program: b.build().expect("litmus programs are well-formed"),
    }
}

/// WRC (write-to-read causality): T0 writes X; T1 reads X then writes Y;
/// T2 reads Y then X. Seeing Y's write but missing X's is forbidden under
/// SC/TSO.
pub fn wrc() -> LitmusTest {
    let mut b = builder(3);
    b.thread(0).store(X);
    b.thread(1).load(X).store(Y);
    b.thread(2).load(Y).load(X);
    let _ = Z; // Z reserved for future three-address shapes.
    LitmusTest {
        name: "WRC",
        description: "causality chain broken: forbidden under SC/TSO",
        program: b.build().expect("litmus programs are well-formed"),
    }
}

/// MP with *partial* barriers: the writer uses a store-store barrier
/// (`dmb st`) and the reader a load-load barrier (`dmb ld`) — exactly the
/// pairing needed to forbid the stale-data outcome under weak models, at
/// lower cost than full barriers.
pub fn message_passing_partial_fences() -> LitmusTest {
    let mut b = builder(2);
    b.thread(0)
        .store(X)
        .fence_of(crate::FenceKind::StoreStore)
        .store(Y);
    b.thread(1)
        .load(Y)
        .fence_of(crate::FenceKind::LoadLoad)
        .load(X);
    LitmusTest {
        name: "MP+dmb.st/dmb.ld",
        description:
            "flag seen but data stale: forbidden under every model (partial barriers suffice)",
        program: b.build().expect("litmus programs are well-formed"),
    }
}

/// SB with store-store barriers only: `dmb st` does not order a store
/// before a later load, so the relaxed outcome remains observable under
/// TSO and weak models — the canonical example of an *insufficient*
/// barrier.
pub fn store_buffering_partial_fences() -> LitmusTest {
    let mut b = builder(2);
    b.thread(0)
        .store(X)
        .fence_of(crate::FenceKind::StoreStore)
        .load(Y);
    b.thread(1)
        .store(Y)
        .fence_of(crate::FenceKind::StoreStore)
        .load(X);
    LitmusTest {
        name: "SB+dmb.st",
        description:
            "store-store barriers do not fix SB: relaxed outcome still allowed under TSO/Weak",
        program: b.build().expect("litmus programs are well-formed"),
    }
}

/// LB with full fences between the load and the store of each thread: the
/// relaxed outcome becomes forbidden under every model.
pub fn load_buffering_fenced() -> LitmusTest {
    let mut b = builder(2);
    b.thread(0).load(X).fence().store(Y);
    b.thread(1).load(Y).fence().store(X);
    LitmusTest {
        name: "LB+fences",
        description: "both loads read the other store: forbidden under every model",
        program: b.build().expect("litmus programs are well-formed"),
    }
}

/// MP where only the *reader* is fenced: without the writer-side barrier
/// the stale-data outcome remains allowed under weak models — one-sided
/// fencing is insufficient.
pub fn message_passing_reader_fence_only() -> LitmusTest {
    let mut b = builder(2);
    b.thread(0).store(X).store(Y);
    b.thread(1).load(Y).fence().load(X);
    LitmusTest {
        name: "MP+reader-fence",
        description: "one-sided fencing: stale data still allowed under Weak",
        program: b.build().expect("litmus programs are well-formed"),
    }
}

/// All litmus tests in this library.
pub fn all() -> Vec<LitmusTest> {
    vec![
        store_buffering(),
        store_buffering_fenced(),
        store_buffering_partial_fences(),
        message_passing(),
        message_passing_fenced(),
        message_passing_partial_fences(),
        load_buffering(),
        load_buffering_fenced(),
        message_passing_reader_fence_only(),
        iriw(),
        iriw_fenced(),
        corr(),
        wrc(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_tests_are_well_formed_and_uniquely_named() {
        let tests = all();
        assert_eq!(tests.len(), 13);
        let mut names: Vec<_> = tests.iter().map(|t| t.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), tests.len(), "duplicate litmus names");
        for t in &tests {
            assert!(t.program.num_threads() >= 1, "{}", t.name);
            assert!(!t.description.is_empty());
        }
    }

    #[test]
    fn sb_shape() {
        let t = store_buffering();
        assert_eq!(t.program.num_loads(), 2);
        assert_eq!(t.program.num_stores(), 2);
        assert_eq!(t.program.num_addrs(), 2);
    }

    #[test]
    fn fenced_variants_contain_fences() {
        assert_eq!(
            store_buffering_fenced().program.num_instrs() - store_buffering().program.num_instrs(),
            2
        );
        assert!(message_passing_fenced()
            .program
            .iter_ops()
            .any(|(_, i)| i.is_fence()));
    }

    #[test]
    fn iriw_has_four_threads() {
        assert_eq!(iriw().program.num_threads(), 4);
    }
}
