//! Multi-threaded test programs and their builder.

use crate::{Addr, FenceKind, Instr, MemoryLayout, OpId, StoreId, Tid};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error produced when building an invalid [`Program`].
#[derive(Clone, Debug, Eq, PartialEq)]
pub enum ProgramError {
    /// The program has no threads at all.
    NoThreads,
    /// The program declares zero shared addresses.
    NoAddresses,
    /// An instruction references an address outside `0..num_addrs`.
    AddressOutOfRange {
        /// The offending instruction.
        op: OpId,
        /// The out-of-range address.
        addr: Addr,
        /// The number of shared addresses the program declared.
        num_addrs: u32,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::NoThreads => f.write_str("program has no threads"),
            ProgramError::NoAddresses => f.write_str("program declares zero shared addresses"),
            ProgramError::AddressOutOfRange {
                op,
                addr,
                num_addrs,
            } => write!(
                f,
                "instruction {op} references address {addr} outside 0..{num_addrs}"
            ),
        }
    }
}

impl std::error::Error for ProgramError {}

/// A proto-instruction recorded by [`ProgramBuilder`] before unique store
/// values are assigned.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
enum ProtoOp {
    Load(Addr),
    Store(Addr),
    Fence(FenceKind),
}

/// Builder for [`Program`] values.
///
/// Threads are added or extended with [`ProgramBuilder::thread`]; unique
/// store ids are assigned in `(thread, program-order)` sequence when
/// [`ProgramBuilder::build`] is called.
///
/// ```
/// use mtc_isa::{Addr, MemoryLayout, ProgramBuilder};
///
/// let mut b = ProgramBuilder::new(4, MemoryLayout::no_false_sharing());
/// b.thread(0).store(Addr(0)).load(Addr(1)).fence().load(Addr(2));
/// b.thread(1).store(Addr(1)).store(Addr(2));
/// let program = b.build()?;
/// assert_eq!(program.num_threads(), 2);
/// assert_eq!(program.num_stores(), 3);
/// # Ok::<(), mtc_isa::ProgramError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct ProgramBuilder {
    threads: Vec<Vec<ProtoOp>>,
    num_addrs: u32,
    layout: MemoryLayout,
}

impl ProgramBuilder {
    /// Creates a builder for a program over `num_addrs` shared words laid
    /// out according to `layout`.
    pub fn new(num_addrs: u32, layout: MemoryLayout) -> Self {
        ProgramBuilder {
            threads: Vec::new(),
            num_addrs,
            layout,
        }
    }

    /// Returns a [`ThreadBuilder`] appending instructions to thread `tid`,
    /// creating it (and any lower-numbered empty threads) if absent.
    pub fn thread(&mut self, tid: usize) -> ThreadBuilder<'_> {
        if self.threads.len() <= tid {
            self.threads.resize_with(tid + 1, Vec::new);
        }
        ThreadBuilder {
            ops: &mut self.threads[tid],
        }
    }

    /// Number of threads added so far.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Validates the program and assigns dense, unique store ids.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError`] if the program has no threads, declares no
    /// shared addresses, or references an out-of-range address.
    pub fn build(self) -> Result<Program, ProgramError> {
        if self.threads.is_empty() {
            return Err(ProgramError::NoThreads);
        }
        if self.num_addrs == 0 {
            return Err(ProgramError::NoAddresses);
        }
        let mut next_store = 1u32;
        let mut threads = Vec::with_capacity(self.threads.len());
        let mut store_ops = Vec::new();
        for (t, ops) in self.threads.iter().enumerate() {
            let tid = Tid(t as u32);
            let mut code = Vec::with_capacity(ops.len());
            for (i, proto) in ops.iter().enumerate() {
                let op = OpId::new(tid, i as u32);
                let instr = match *proto {
                    ProtoOp::Load(addr) => Instr::Load { addr },
                    ProtoOp::Store(addr) => {
                        let value = StoreId(next_store);
                        next_store += 1;
                        store_ops.push(op);
                        Instr::Store { addr, value }
                    }
                    ProtoOp::Fence(kind) => Instr::Fence(kind),
                };
                if let Some(addr) = instr.addr() {
                    if addr.0 >= self.num_addrs {
                        return Err(ProgramError::AddressOutOfRange {
                            op,
                            addr,
                            num_addrs: self.num_addrs,
                        });
                    }
                }
                code.push(instr);
            }
            threads.push(code);
        }
        Ok(Program {
            threads,
            num_addrs: self.num_addrs,
            layout: self.layout,
            store_ops,
        })
    }
}

/// Appends instructions to one thread of a [`ProgramBuilder`].
///
/// Returned by [`ProgramBuilder::thread`]; methods chain by value.
#[derive(Debug)]
pub struct ThreadBuilder<'a> {
    ops: &'a mut Vec<ProtoOp>,
}

impl ThreadBuilder<'_> {
    /// Appends a load from `addr`.
    pub fn load(self, addr: Addr) -> Self {
        self.ops.push(ProtoOp::Load(addr));
        self
    }

    /// Appends a store to `addr`; its unique value is assigned at build time.
    pub fn store(self, addr: Addr) -> Self {
        self.ops.push(ProtoOp::Store(addr));
        self
    }

    /// Appends a full memory barrier.
    pub fn fence(self) -> Self {
        self.fence_of(FenceKind::Full)
    }

    /// Appends a barrier of the given kind (e.g. a store-store `dmb st`).
    pub fn fence_of(self, kind: FenceKind) -> Self {
        self.ops.push(ProtoOp::Fence(kind));
        self
    }

    /// Number of instructions in this thread so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if the thread has no instructions yet.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// An immutable, validated multi-threaded test program.
///
/// Every store carries a globally unique [`StoreId`] (assigned densely from
/// 1 in `(thread, program-order)` sequence) so the producing store of any
/// loaded value is identifiable from the value alone.
#[derive(Clone, Debug, Eq, PartialEq, Serialize, Deserialize)]
pub struct Program {
    threads: Vec<Vec<Instr>>,
    num_addrs: u32,
    layout: MemoryLayout,
    /// `store_ops[id - 1]` is the op that writes `StoreId(id)`.
    store_ops: Vec<OpId>,
}

impl Program {
    /// The per-thread instruction lists, indexed by thread id.
    pub fn threads(&self) -> &[Vec<Instr>] {
        &self.threads
    }

    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Number of shared word addresses (`0..num_addrs`).
    pub fn num_addrs(&self) -> u32 {
        self.num_addrs
    }

    /// The shared-memory layout (words per cache line).
    pub fn layout(&self) -> MemoryLayout {
        self.layout
    }

    /// Returns the instruction at `op`, or `None` if out of range.
    pub fn instr(&self, op: OpId) -> Option<&Instr> {
        self.threads.get(op.tid.index())?.get(op.idx as usize)
    }

    /// Length (instruction count) of thread `tid`.
    pub fn thread_len(&self, tid: Tid) -> usize {
        self.threads.get(tid.index()).map_or(0, Vec::len)
    }

    /// Total instruction count across all threads, including fences.
    pub fn num_instrs(&self) -> usize {
        self.threads.iter().map(Vec::len).sum()
    }

    /// Total number of memory operations (loads + stores).
    pub fn num_memory_ops(&self) -> usize {
        self.iter_ops().filter(|(_, i)| i.is_memory()).count()
    }

    /// Total number of loads.
    pub fn num_loads(&self) -> usize {
        self.iter_ops().filter(|(_, i)| i.is_load()).count()
    }

    /// Total number of stores.
    pub fn num_stores(&self) -> usize {
        self.store_ops.len()
    }

    /// Iterates over all instructions in `(thread, program-order)` order.
    pub fn iter_ops(&self) -> impl Iterator<Item = (OpId, &Instr)> + '_ {
        self.threads.iter().enumerate().flat_map(|(t, ops)| {
            ops.iter()
                .enumerate()
                .map(move |(i, instr)| (OpId::new(Tid(t as u32), i as u32), instr))
        })
    }

    /// Iterates over the op ids of all loads, in `(thread, program-order)`
    /// order.
    pub fn loads(&self) -> impl Iterator<Item = OpId> + '_ {
        self.iter_ops()
            .filter(|(_, i)| i.is_load())
            .map(|(op, _)| op)
    }

    /// Iterates over `(op, store_id)` for all stores.
    pub fn stores(&self) -> impl Iterator<Item = (OpId, StoreId)> + '_ {
        self.iter_ops()
            .filter_map(|(op, i)| i.store_id().map(|id| (op, id)))
    }

    /// Iterates over `(op, store_id)` for all stores to `addr`.
    pub fn stores_to(&self, addr: Addr) -> impl Iterator<Item = (OpId, StoreId)> + '_ {
        self.iter_ops().filter_map(move |(op, i)| match *i {
            Instr::Store { addr: a, value } if a == addr => Some((op, value)),
            _ => None,
        })
    }

    /// Returns the op that writes `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not assigned by this program.
    pub fn store_op(&self, id: StoreId) -> OpId {
        self.store_ops[(id.0 - 1) as usize]
    }

    /// Returns the op that writes `id`, or `None` if `id` does not belong to
    /// this program.
    pub fn try_store_op(&self, id: StoreId) -> Option<OpId> {
        let idx = id.0.checked_sub(1)? as usize;
        self.store_ops.get(idx).copied()
    }

    /// Returns the latest program-order-earlier store to the same address as
    /// `load`, if any — the intra-thread reads-from candidate of §3.1.
    pub fn last_own_store_before(&self, load: OpId) -> Option<(OpId, StoreId)> {
        let addr = self.instr(load)?.addr()?;
        let code = &self.threads[load.tid.index()];
        code[..load.idx as usize]
            .iter()
            .enumerate()
            .rev()
            .find_map(|(i, instr)| match *instr {
                Instr::Store { addr: a, value } if a == addr => {
                    Some((OpId::new(load.tid, i as u32), value))
                }
                _ => None,
            })
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "program: {} threads, {} addrs, {} words/line",
            self.num_threads(),
            self.num_addrs,
            self.layout.words_per_line()
        )?;
        for (t, ops) in self.threads.iter().enumerate() {
            writeln!(f, "thread {t}:")?;
            for (i, instr) in ops.iter().enumerate() {
                writeln!(f, "  {i:>3}: {instr}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Program {
        let mut b = ProgramBuilder::new(4, MemoryLayout::no_false_sharing());
        b.thread(0)
            .store(Addr(0))
            .load(Addr(1))
            .fence()
            .load(Addr(0));
        b.thread(1).store(Addr(1)).store(Addr(0)).load(Addr(1));
        b.build().unwrap()
    }

    #[test]
    fn build_assigns_dense_store_ids() {
        let p = sample();
        let stores: Vec<_> = p.stores().collect();
        assert_eq!(
            stores,
            vec![
                (OpId::new(Tid(0), 0), StoreId(1)),
                (OpId::new(Tid(1), 0), StoreId(2)),
                (OpId::new(Tid(1), 1), StoreId(3)),
            ]
        );
        for (op, id) in stores {
            assert_eq!(p.store_op(id), op);
            assert_eq!(p.try_store_op(id), Some(op));
        }
        assert_eq!(p.try_store_op(StoreId(0)), None);
        assert_eq!(p.try_store_op(StoreId(99)), None);
    }

    #[test]
    fn counts_are_consistent() {
        let p = sample();
        assert_eq!(p.num_instrs(), 7);
        assert_eq!(p.num_memory_ops(), 6);
        assert_eq!(p.num_loads(), 3);
        assert_eq!(p.num_stores(), 3);
        assert_eq!(p.thread_len(Tid(0)), 4);
        assert_eq!(p.thread_len(Tid(9)), 0);
        assert_eq!(p.loads().count(), 3);
    }

    #[test]
    fn stores_to_filters_by_address() {
        let p = sample();
        let to0: Vec<_> = p.stores_to(Addr(0)).map(|(_, id)| id).collect();
        assert_eq!(to0, vec![StoreId(1), StoreId(3)]);
    }

    #[test]
    fn last_own_store_before_finds_latest_same_address() {
        let p = sample();
        // T0.3 loads addr 0; T0.0 stored addr 0.
        assert_eq!(
            p.last_own_store_before(OpId::new(Tid(0), 3)),
            Some((OpId::new(Tid(0), 0), StoreId(1)))
        );
        // T0.1 loads addr 1; no earlier own store to addr 1.
        assert_eq!(p.last_own_store_before(OpId::new(Tid(0), 1)), None);
        // T1.2 loads addr 1; T1.0 stored addr 1.
        assert_eq!(
            p.last_own_store_before(OpId::new(Tid(1), 2)),
            Some((OpId::new(Tid(1), 0), StoreId(2)))
        );
    }

    #[test]
    fn build_rejects_invalid_programs() {
        let b = ProgramBuilder::new(4, MemoryLayout::no_false_sharing());
        assert_eq!(b.build().unwrap_err(), ProgramError::NoThreads);

        let mut b = ProgramBuilder::new(0, MemoryLayout::no_false_sharing());
        b.thread(0).load(Addr(0));
        assert_eq!(b.build().unwrap_err(), ProgramError::NoAddresses);

        let mut b = ProgramBuilder::new(2, MemoryLayout::no_false_sharing());
        b.thread(0).load(Addr(5));
        match b.build().unwrap_err() {
            ProgramError::AddressOutOfRange {
                addr, num_addrs, ..
            } => {
                assert_eq!(addr, Addr(5));
                assert_eq!(num_addrs, 2);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn thread_builder_creates_intermediate_threads() {
        let mut b = ProgramBuilder::new(1, MemoryLayout::no_false_sharing());
        b.thread(2).store(Addr(0));
        assert_eq!(b.num_threads(), 3);
        let p = b.build().unwrap();
        assert_eq!(p.thread_len(Tid(0)), 0);
        assert_eq!(p.thread_len(Tid(2)), 1);
    }

    #[test]
    fn display_lists_all_instructions() {
        let rendered = sample().to_string();
        assert!(rendered.contains("thread 0"));
        assert!(rendered.contains("st 0x0 <- #1"));
        assert!(rendered.contains("fence"));
    }

    #[test]
    fn serde_roundtrip() {
        let p = sample();
        let json = serde_json::to_string(&p).unwrap();
        let back: Program = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
