//! Shared-memory layout: mapping word addresses onto cache lines.
//!
//! The paper evaluates three data layouts — 1, 4 and 16 shared words per
//! 64-byte cache line — to quantify the impact of false sharing on the
//! diversity of memory-access interleavings (Figure 8).

use crate::Addr;
use serde::{Deserialize, Serialize};

/// Mapping from shared word indices to byte addresses and cache lines.
///
/// Shared words are packed `words_per_line` to a cache line; the remaining
/// space in each line is padding. `words_per_line == 1` means every shared
/// word owns a full line (no false sharing).
///
/// ```
/// use mtc_isa::{Addr, MemoryLayout};
///
/// let layout = MemoryLayout::with_words_per_line(4);
/// assert_eq!(layout.line_of(Addr(0)), layout.line_of(Addr(3)));
/// assert_ne!(layout.line_of(Addr(3)), layout.line_of(Addr(4)));
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug, Serialize, Deserialize)]
pub struct MemoryLayout {
    words_per_line: u32,
    line_bytes: u32,
    word_bytes: u32,
}

impl MemoryLayout {
    /// Cache-line size used throughout the paper's evaluation platforms.
    pub const DEFAULT_LINE_BYTES: u32 = 64;
    /// Tests transfer 4 bytes per operation (§5 of the paper).
    pub const DEFAULT_WORD_BYTES: u32 = 4;

    /// Creates a layout with `words_per_line` shared words in each line.
    ///
    /// # Panics
    ///
    /// Panics if `words_per_line` is zero or does not fit in a line
    /// (`words_per_line * 4 > 64`).
    pub fn with_words_per_line(words_per_line: u32) -> Self {
        assert!(words_per_line > 0, "words_per_line must be positive");
        assert!(
            words_per_line * Self::DEFAULT_WORD_BYTES <= Self::DEFAULT_LINE_BYTES,
            "words_per_line {words_per_line} does not fit in a {}-byte line",
            Self::DEFAULT_LINE_BYTES
        );
        MemoryLayout {
            words_per_line,
            line_bytes: Self::DEFAULT_LINE_BYTES,
            word_bytes: Self::DEFAULT_WORD_BYTES,
        }
    }

    /// The layout with one shared word per cache line: no false sharing.
    /// This is the paper's default (dark-blue bars of Figure 8).
    pub fn no_false_sharing() -> Self {
        Self::with_words_per_line(1)
    }

    /// Number of shared words packed into each cache line.
    pub fn words_per_line(&self) -> u32 {
        self.words_per_line
    }

    /// Size of a cache line in bytes.
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Size of each shared word in bytes.
    pub fn word_bytes(&self) -> u32 {
        self.word_bytes
    }

    /// Returns the cache-line index holding shared word `addr`.
    pub fn line_of(&self, addr: Addr) -> u32 {
        addr.0 / self.words_per_line
    }

    /// Returns `true` when two shared words share a cache line without being
    /// the same word — the definition of false sharing.
    pub fn false_shares(&self, a: Addr, b: Addr) -> bool {
        a != b && self.line_of(a) == self.line_of(b)
    }

    /// Returns the simulated byte address of shared word `addr`.
    pub fn byte_addr(&self, addr: Addr) -> u64 {
        let line = self.line_of(addr) as u64;
        let slot = (addr.0 % self.words_per_line) as u64;
        line * self.line_bytes as u64 + slot * self.word_bytes as u64
    }

    /// Number of cache lines needed for `num_addrs` shared words.
    pub fn lines_for(&self, num_addrs: u32) -> u32 {
        num_addrs.div_ceil(self.words_per_line)
    }
}

impl Default for MemoryLayout {
    fn default() -> Self {
        Self::no_false_sharing()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_sharing_gives_one_line_per_word() {
        let l = MemoryLayout::no_false_sharing();
        for a in 0..32 {
            assert_eq!(l.line_of(Addr(a)), a);
            assert_eq!(l.byte_addr(Addr(a)), a as u64 * 64);
        }
        assert!(!l.false_shares(Addr(0), Addr(1)));
    }

    #[test]
    fn packed_layout_shares_lines() {
        let l = MemoryLayout::with_words_per_line(16);
        assert_eq!(l.line_of(Addr(0)), 0);
        assert_eq!(l.line_of(Addr(15)), 0);
        assert_eq!(l.line_of(Addr(16)), 1);
        assert!(l.false_shares(Addr(0), Addr(15)));
        assert!(!l.false_shares(Addr(15), Addr(16)));
        assert!(!l.false_shares(Addr(3), Addr(3)));
        assert_eq!(l.byte_addr(Addr(17)), 64 + 4);
    }

    #[test]
    fn lines_for_rounds_up() {
        let l = MemoryLayout::with_words_per_line(4);
        assert_eq!(l.lines_for(32), 8);
        assert_eq!(l.lines_for(33), 9);
        assert_eq!(l.lines_for(1), 1);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_words_per_line_panics() {
        MemoryLayout::with_words_per_line(0);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_words_per_line_panics() {
        MemoryLayout::with_words_per_line(17);
    }
}
