//! Core operation-level types: thread ids, addresses, store ids and
//! instructions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a test thread, numbered densely from zero.
///
/// The paper runs 2-, 4- and 7-threaded tests; nothing in this crate limits
/// the thread count other than memory.
///
/// ```
/// use mtc_isa::Tid;
/// assert!(Tid(0) < Tid(3));
/// ```
#[derive(
    Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct Tid(pub u32);

impl Tid {
    /// Returns the thread id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A word-granular shared-memory address.
///
/// Tests address a small pool of shared words (`0..num_addrs`); the mapping
/// to byte addresses and cache lines is the job of
/// [`MemoryLayout`](crate::MemoryLayout).
///
/// ```
/// use mtc_isa::Addr;
/// assert_eq!(Addr(5).index(), 5);
/// ```
#[derive(
    Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct Addr(pub u32);

impl Addr {
    /// Returns the address as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

/// The globally-unique, non-zero value written by a store operation.
///
/// Store values are assigned densely starting at 1 when a
/// [`Program`](crate::Program) is built; the value 0 is reserved for the
/// initial contents of every shared location (see [`Value::INIT`]).
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Serialize, Deserialize)]
pub struct StoreId(pub u32);

impl StoreId {
    /// Returns the value a store with this id writes to memory.
    pub fn value(self) -> Value {
        Value(self.0)
    }
}

impl fmt::Display for StoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A value held in a shared-memory word: either the initial value or the
/// unique value written by some store.
///
/// ```
/// use mtc_isa::{StoreId, Value};
/// assert!(Value::INIT.is_init());
/// assert_eq!(Value::from(StoreId(3)).store_id(), Some(StoreId(3)));
/// ```
#[derive(
    Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct Value(pub u32);

impl Value {
    /// The initial value of every shared memory word.
    pub const INIT: Value = Value(0);

    /// Returns `true` if this is the initial (pre-test) memory value.
    pub fn is_init(self) -> bool {
        self.0 == 0
    }

    /// Returns the id of the store that produced this value, or `None` for
    /// the initial value.
    pub fn store_id(self) -> Option<StoreId> {
        if self.is_init() {
            None
        } else {
            Some(StoreId(self.0))
        }
    }
}

impl From<StoreId> for Value {
    fn from(id: StoreId) -> Self {
        id.value()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.store_id() {
            None => f.write_str("init"),
            Some(id) => write!(f, "{id}"),
        }
    }
}

/// Identifies one static instruction in a test program: thread `tid`,
/// position `idx` within that thread's instruction list.
///
/// `OpId` orders first by thread, then by program order, which makes it
/// convenient as a dense constraint-graph vertex key.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Serialize, Deserialize)]
pub struct OpId {
    /// The thread executing the instruction.
    pub tid: Tid,
    /// Index of the instruction within the thread's program order.
    pub idx: u32,
}

impl OpId {
    /// Creates an op id from a thread id and a program-order index.
    pub fn new(tid: Tid, idx: u32) -> Self {
        OpId { tid, idx }
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.tid, self.idx)
    }
}

/// Kinds of memory barrier supported by the test ISA.
///
/// The paper's generated tests only use full barriers (`mfence` on x86,
/// `dmb` on ARM) at iteration boundaries; litmus tests and extension
/// workloads also place partial barriers (ARM `dmb st` / `dmb ld` flavours)
/// between arbitrary operations.
#[derive(
    Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Default, Serialize, Deserialize,
)]
pub enum FenceKind {
    /// A full barrier ordering every earlier access before every later one
    /// (`mfence` / `dmb sy`).
    #[default]
    Full,
    /// A store-store barrier ordering earlier stores before later stores
    /// (`dmb st`); loads pass freely.
    StoreStore,
    /// A load-load barrier ordering earlier loads before later loads
    /// (`dmb ld` restricted to its load-ordering role); stores pass freely.
    LoadLoad,
}

impl FenceKind {
    /// Returns `true` when the barrier orders against `instr` (on either
    /// side).
    pub fn orders_with(self, instr: &Instr) -> bool {
        match self {
            FenceKind::Full => true,
            FenceKind::StoreStore => instr.is_store() || instr.is_fence(),
            FenceKind::LoadLoad => instr.is_load() || instr.is_fence(),
        }
    }
}

impl fmt::Display for FenceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FenceKind::Full => f.write_str("fence"),
            FenceKind::StoreStore => f.write_str("fence.st"),
            FenceKind::LoadLoad => f.write_str("fence.ld"),
        }
    }
}

/// One instruction of a test program.
///
/// Stores carry the unique [`StoreId`] assigned at program-build time; loads
/// destinations are implicit (the instrumentation, not the ISA, decides what
/// happens to a loaded value).
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug, Serialize, Deserialize)]
pub enum Instr {
    /// Load a word from `addr`.
    Load {
        /// Source address.
        addr: Addr,
    },
    /// Store the unique value `value` to `addr`.
    Store {
        /// Destination address.
        addr: Addr,
        /// Unique value written by this store.
        value: StoreId,
    },
    /// A memory barrier.
    Fence(FenceKind),
}

impl Instr {
    /// Returns the address accessed, or `None` for fences.
    pub fn addr(&self) -> Option<Addr> {
        match *self {
            Instr::Load { addr } | Instr::Store { addr, .. } => Some(addr),
            Instr::Fence(_) => None,
        }
    }

    /// Returns `true` for load instructions.
    pub fn is_load(&self) -> bool {
        matches!(self, Instr::Load { .. })
    }

    /// Returns `true` for store instructions.
    pub fn is_store(&self) -> bool {
        matches!(self, Instr::Store { .. })
    }

    /// Returns `true` for fences.
    pub fn is_fence(&self) -> bool {
        matches!(self, Instr::Fence(_))
    }

    /// Returns `true` for loads and stores (anything that touches memory).
    pub fn is_memory(&self) -> bool {
        !self.is_fence()
    }

    /// Returns the store id for store instructions.
    pub fn store_id(&self) -> Option<StoreId> {
        match *self {
            Instr::Store { value, .. } => Some(value),
            _ => None,
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Load { addr } => write!(f, "ld {addr}"),
            Instr::Store { addr, value } => write!(f, "st {addr} <- {value}"),
            Instr::Fence(kind) => write!(f, "{kind}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_init_roundtrip() {
        assert!(Value::INIT.is_init());
        assert_eq!(Value::INIT.store_id(), None);
        let v = Value::from(StoreId(7));
        assert!(!v.is_init());
        assert_eq!(v.store_id(), Some(StoreId(7)));
    }

    #[test]
    fn opid_orders_by_thread_then_index() {
        let a = OpId::new(Tid(0), 5);
        let b = OpId::new(Tid(1), 0);
        let c = OpId::new(Tid(1), 2);
        assert!(a < b && b < c);
    }

    #[test]
    fn instr_classification() {
        let ld = Instr::Load { addr: Addr(3) };
        let st = Instr::Store {
            addr: Addr(3),
            value: StoreId(1),
        };
        let fence = Instr::Fence(FenceKind::Full);
        assert!(ld.is_load() && !ld.is_store() && ld.is_memory());
        assert!(st.is_store() && st.store_id() == Some(StoreId(1)));
        assert!(fence.is_fence() && fence.addr().is_none() && !fence.is_memory());
        assert_eq!(ld.addr(), Some(Addr(3)));
    }

    #[test]
    fn display_is_nonempty_and_stable() {
        assert_eq!(format!("{}", Instr::Load { addr: Addr(4) }), "ld 0x4");
        assert_eq!(
            format!(
                "{}",
                Instr::Store {
                    addr: Addr(1),
                    value: StoreId(9)
                }
            ),
            "st 0x1 <- #9"
        );
        assert_eq!(format!("{}", OpId::new(Tid(2), 11)), "T2.11");
        assert_eq!(format!("{}", Value::INIT), "init");
    }
}
