//! A tiny text format for test programs — hand-written litmus shapes
//! without touching Rust.
//!
//! ```text
//! # comments and blank lines are ignored
//! addrs 2
//! words_per_line 1        # optional, default 1
//! thread 0: st 0; ld 1
//! thread 1: st 1; fence; ld 0
//! ```
//!
//! Operations: `ld A`, `st A` (A = shared-word index), `fence`
//! (full barrier), `fence.st` (store-store), `fence.ld` (load-load).
//!
//! ```
//! use mtc_isa::parse_program;
//!
//! let program = parse_program("addrs 2\nthread 0: st 0; ld 1\nthread 1: st 1; ld 0\n")?;
//! assert_eq!(program.num_threads(), 2);
//! assert_eq!(program.num_loads(), 2);
//! # Ok::<(), mtc_isa::ParseProgramError>(())
//! ```

use crate::{Addr, FenceKind, MemoryLayout, Program, ProgramBuilder, ProgramError};
use std::fmt;

/// Error parsing the program text format.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct ParseProgramError {
    /// 1-based line number of the offending line, if known.
    pub line: Option<usize>,
    /// What went wrong.
    pub message: String,
}

impl ParseProgramError {
    fn at(line: usize, message: impl Into<String>) -> Self {
        ParseProgramError {
            line: Some(line + 1),
            message: message.into(),
        }
    }

    fn general(message: impl Into<String>) -> Self {
        ParseProgramError {
            line: None,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "line {line}: {}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for ParseProgramError {}

impl From<ProgramError> for ParseProgramError {
    fn from(e: ProgramError) -> Self {
        ParseProgramError::general(e.to_string())
    }
}

/// Parses the text format described in the module documentation above.
///
/// # Errors
///
/// Returns [`ParseProgramError`] with the offending line on malformed
/// input, unknown operations, missing `addrs`, or invalid addresses.
pub fn parse_program(text: &str) -> Result<Program, ParseProgramError> {
    let mut num_addrs: Option<u32> = None;
    let mut words_per_line = 1u32;
    let mut threads: Vec<(usize, Vec<(usize, String)>)> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("addrs") {
            num_addrs = Some(
                rest.trim()
                    .parse()
                    .map_err(|_| ParseProgramError::at(lineno, "addrs: expected a number"))?,
            );
        } else if let Some(rest) = line.strip_prefix("words_per_line") {
            words_per_line = rest
                .trim()
                .parse()
                .map_err(|_| ParseProgramError::at(lineno, "words_per_line: expected a number"))?;
        } else if let Some(rest) = line.strip_prefix("thread") {
            let (tid_str, ops_str) = rest.split_once(':').ok_or_else(|| {
                ParseProgramError::at(lineno, "thread line needs `thread N: op; op; ...`")
            })?;
            let tid: usize = tid_str
                .trim()
                .parse()
                .map_err(|_| ParseProgramError::at(lineno, "thread: expected a thread number"))?;
            let ops = ops_str
                .split(';')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(|s| (lineno, s.to_owned()))
                .collect();
            threads.push((tid, ops));
        } else {
            return Err(ParseProgramError::at(
                lineno,
                format!("unrecognized directive `{line}`"),
            ));
        }
    }

    let num_addrs =
        num_addrs.ok_or_else(|| ParseProgramError::general("missing `addrs N` directive"))?;
    if words_per_line == 0
        || words_per_line * MemoryLayout::DEFAULT_WORD_BYTES > MemoryLayout::DEFAULT_LINE_BYTES
    {
        return Err(ParseProgramError::general(format!(
            "words_per_line {words_per_line} does not fit a cache line"
        )));
    }
    let mut builder =
        ProgramBuilder::new(num_addrs, MemoryLayout::with_words_per_line(words_per_line));
    for (tid, ops) in threads {
        let mut thread = builder.thread(tid);
        for (lineno, op) in ops {
            thread = match op.split_once(char::is_whitespace) {
                Some(("ld", a)) => thread.load(parse_addr(lineno, a)?),
                Some(("st", a)) => thread.store(parse_addr(lineno, a)?),
                None if op == "fence" => thread.fence(),
                None if op == "fence.st" => thread.fence_of(FenceKind::StoreStore),
                None if op == "fence.ld" => thread.fence_of(FenceKind::LoadLoad),
                _ => {
                    return Err(ParseProgramError::at(
                        lineno,
                        format!("unknown operation `{op}` (ld A | st A | fence[.st|.ld])"),
                    ))
                }
            };
        }
    }
    Ok(builder.build()?)
}

fn parse_addr(lineno: usize, s: &str) -> Result<Addr, ParseProgramError> {
    let s = s.trim();
    let value = if let Some(hex) = s.strip_prefix("0x") {
        u32::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    value
        .map(Addr)
        .map_err(|_| ParseProgramError::at(lineno, format!("bad address `{s}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{litmus, Instr};

    #[test]
    fn parses_the_sb_shape() {
        let text = "addrs 2\nthread 0: st 0; ld 1\nthread 1: st 1; ld 0\n";
        let p = parse_program(text).unwrap();
        assert_eq!(p, litmus::store_buffering().program);
    }

    #[test]
    fn parses_fences_comments_and_hex() {
        let text = "\
            # message passing with partial fences\n\
            addrs 2\n\
            words_per_line 1\n\
            thread 0: st 0x0; fence.st; st 0x1\n\
            \n\
            thread 1: ld 1; fence.ld; ld 0  # reader\n";
        let p = parse_program(text).unwrap();
        assert_eq!(p, litmus::message_passing_partial_fences().program);
        assert!(p
            .iter_ops()
            .any(|(_, i)| matches!(i, Instr::Fence(FenceKind::StoreStore))));
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let e = parse_program("addrs 2\nthread 0: frobnicate 3\n").unwrap_err();
        assert_eq!(e.line, Some(2));
        assert!(e.to_string().contains("unknown operation"));

        let e = parse_program("thread 0: ld 0\n").unwrap_err();
        assert!(e.to_string().contains("missing `addrs"));

        let e = parse_program("addrs 1\nthread 0: ld 5\n").unwrap_err();
        assert!(e.to_string().contains("outside"), "{e}");

        let e = parse_program("addrs 2\nbanana\n").unwrap_err();
        assert!(e.to_string().contains("unrecognized directive"));

        let e = parse_program("addrs 2\nwords_per_line 99\n").unwrap_err();
        assert!(e.to_string().contains("cache line"));
    }

    #[test]
    fn roundtrips_every_litmus_test_through_display_like_text() {
        // Build the text form from the program and re-parse it.
        for t in litmus::all() {
            let mut text = format!("addrs {}\n", t.program.num_addrs());
            for (tid, code) in t.program.threads().iter().enumerate() {
                let ops: Vec<String> = code
                    .iter()
                    .map(|i| match *i {
                        Instr::Load { addr } => format!("ld {}", addr.0),
                        Instr::Store { addr, .. } => format!("st {}", addr.0),
                        Instr::Fence(FenceKind::Full) => "fence".to_owned(),
                        Instr::Fence(FenceKind::StoreStore) => "fence.st".to_owned(),
                        Instr::Fence(FenceKind::LoadLoad) => "fence.ld".to_owned(),
                    })
                    .collect();
                text.push_str(&format!("thread {tid}: {}\n", ops.join("; ")));
            }
            let reparsed =
                parse_program(&text).unwrap_or_else(|e| panic!("{}: {e}\n{text}", t.name));
            assert_eq!(reparsed, t.program, "{}", t.name);
        }
    }
}
