//! False sharing study: sweep the number of shared words packed into each
//! cache line and watch the diversity of memory-access interleavings grow
//! with the extra coherence contention (the orange/green bars of Figure 8).
//!
//! Run with: `cargo run --example false_sharing --release`

use mtracecheck::isa::IsaKind;
use mtracecheck::{Campaign, CampaignConfig, TestConfig};

fn main() {
    let iterations = 4096;
    println!("x86-4-50-64, {iterations} iterations per test, 3 tests per layout\n");
    println!("{:<14} {:>24}", "words/line", "mean unique interleavings");
    let mut previous = 0.0;
    for words_per_line in [1u32, 4, 16] {
        let test = TestConfig::new(IsaKind::X86, 4, 50, 64)
            .with_words_per_line(words_per_line)
            .with_seed(11);
        let report = Campaign::new(CampaignConfig::new(test, iterations).with_tests(3)).run();
        let unique = report.mean_unique_signatures();
        println!("{words_per_line:<14} {unique:>24.1}");
        assert!(
            report.failing_tests() == 0,
            "correct hardware must check clean"
        );
        if previous > 0.0 && unique < previous * 0.8 {
            println!("  (note: diversity dropped; tune contention knobs)");
        }
        previous = unique;
    }
    println!("\npacking more shared words per line raises coherence contention,");
    println!("which diversifies the observed interleavings — exactly Figure 8's trend.");
}
