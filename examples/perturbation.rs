//! Perturbation comparison: how much memory traffic unrelated to the test
//! does each observability technique add? Register flushing (TSOtool-style)
//! stores every loaded value; MTraceCheck stores only the final signature
//! words (Figure 11), at the price of larger code (Figure 12).
//!
//! Run with: `cargo run --example perturbation --release`

use mtracecheck::instr::{
    analyze, CodeSizeModel, IntrusivenessReport, SignatureSchema, SourcePruning,
};
use mtracecheck::isa::IsaKind;
use mtracecheck::testgen::{generate, TestConfig};

fn main() {
    let configs = [
        TestConfig::new(IsaKind::Arm, 2, 50, 32),
        TestConfig::new(IsaKind::Arm, 4, 100, 64),
        TestConfig::new(IsaKind::Arm, 7, 200, 64),
        TestConfig::new(IsaKind::X86, 2, 50, 32),
        TestConfig::new(IsaKind::X86, 4, 200, 64),
    ];
    println!(
        "{:<16} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "config", "sig bytes", "flush bytes", "normalized", "code x", "L1 fit"
    );
    let mut normalized_sum = 0.0;
    for base in &configs {
        let test = base.clone().with_seed(5);
        let program = generate(&test);
        let analysis = analyze(&program, &SourcePruning::none());
        let schema = SignatureSchema::build(&program, &analysis, test.isa.register_bits());
        let intr = IntrusivenessReport::measure(&program, &schema);
        let code = CodeSizeModel::new(test.isa).measure(&program, &schema);
        normalized_sum += intr.normalized();
        println!(
            "{:<16} {:>10} {:>12} {:>11.1}% {:>9.2}x {:>10}",
            test.name(),
            intr.signature_bytes,
            intr.flush_bytes,
            100.0 * intr.normalized(),
            code.ratio(),
            if code.fits_in_l1(32 * 1024) {
                "yes"
            } else {
                "NO"
            },
        );
    }
    let mean = normalized_sum / configs.len() as f64;
    println!(
        "\nmean unrelated traffic vs register flushing: {:.1}% (a {:.0}% reduction)",
        100.0 * mean,
        100.0 * (1.0 - mean)
    );
}
