//! Litmus explorer: for every classic litmus test, enumerate all outcomes
//! each memory model allows (exhaustive oracle), run the test on the
//! corresponding simulated platform, and confirm the constraint-graph
//! checker accepts every observed outcome.
//!
//! Run with: `cargo run --example litmus_explorer --release`

use mtracecheck::graph::{check_conventional, CheckOptions, TestGraphSpec};
use mtracecheck::isa::{litmus, Mcm};
use mtracecheck::sim::{enumerate_outcomes, Simulator, SystemConfig};
use std::collections::BTreeSet;

fn main() {
    for test in litmus::all() {
        println!("=== {} ===", test.name);
        println!("    {}", test.description);
        for mcm in Mcm::ALL {
            let allowed = enumerate_outcomes(&test.program, mcm, 5_000_000)
                .expect("litmus tests are small enough to enumerate");

            // Run the litmus test on a simulated platform with that MCM and
            // an eager scheduler, collecting the outcomes actually seen.
            let system = match mcm {
                Mcm::Sc => SystemConfig::sc_reference(),
                Mcm::Tso => SystemConfig::x86_desktop().with_aggressive_interleaving(),
                Mcm::Weak => SystemConfig::arm_soc().with_aggressive_interleaving(),
            };
            let mut sim = Simulator::new(&test.program, system);
            let observed: BTreeSet<_> = (0..4000)
                .map(|seed| sim.run(seed).expect("litmus runs never crash").reads_from)
                .collect();

            // Every simulated outcome must be one the model allows, and the
            // checker must accept each of them.
            let spec = TestGraphSpec::new(&test.program, mcm);
            let escaped = observed.iter().filter(|rf| !allowed.contains(rf)).count();
            let observations: Vec<_> = observed
                .iter()
                .map(|rf| spec.observe(&test.program, rf, &CheckOptions::default()))
                .collect();
            let outcome = check_conventional(&spec, &observations);

            println!(
                "  {mcm:>4}: {:>3} allowed outcomes, {:>3} observed, {} outside the model, {} checker violations",
                allowed.len(),
                observed.len(),
                escaped,
                outcome.violation_count()
            );
            assert_eq!(
                escaped, 0,
                "simulator produced an outcome the model forbids"
            );
            assert_eq!(
                outcome.violation_count(),
                0,
                "checker flagged a legal outcome"
            );
        }
    }
    println!("\nall litmus outcomes conform to their models and pass checking");
}
