//! Bug hunt: inject the paper's three §7 bugs into the simulated platform
//! and show MTraceCheck exposing each — cyclic constraint graphs for the
//! two load→load bugs (with a Figure 13-style cycle printout) and crashed
//! runs for the protocol race.
//!
//! Run with: `cargo run --example bug_hunt --release`

use mtracecheck::isa::IsaKind;
use mtracecheck::sim::{BugKind, CacheConfig, SystemConfig};
use mtracecheck::{Campaign, CampaignConfig, TestConfig};

fn hunting_system(bug: BugKind) -> SystemConfig {
    // Like the paper's bug campaigns, give the scheduler enough
    // interleaving energy to hit the race windows within few iterations.
    SystemConfig::gem5_x86()
        .with_bug(bug)
        .with_aggressive_interleaving()
}

fn main() {
    let cases = [
        (
            "bug 1 (load->load, coherence S->M race)",
            TestConfig::new(IsaKind::X86, 4, 50, 8).with_words_per_line(4),
            hunting_system(BugKind::LoadLoadCoherence).with_cache(CacheConfig::l1_1k()),
        ),
        (
            "bug 2 (load->load, LSQ misses invalidations)",
            TestConfig::new(IsaKind::X86, 7, 200, 32).with_words_per_line(16),
            hunting_system(BugKind::LoadLoadLsq),
        ),
        (
            "bug 3 (PUTX/GETX protocol race)",
            TestConfig::new(IsaKind::X86, 7, 200, 64).with_words_per_line(4),
            hunting_system(BugKind::ProtocolRace { prob: 0.02 }).with_cache(CacheConfig::l1_1k()),
        ),
    ];

    for (label, test, system) in cases {
        println!("=== {label} ===");
        println!("test configuration: {}", test.name());
        let campaign = Campaign::new(
            CampaignConfig::new(test.with_seed(7), 1024)
                .with_system(system)
                .with_tests(5),
        );
        let report = campaign.run();
        let crashes: u64 = report.tests.iter().map(|t| t.crashes).sum();
        println!(
            "{} / {} tests exposed the bug ({} violating signatures, {} crashed iterations)",
            report.failing_tests(),
            report.tests.len(),
            report.total_violations(),
            crashes
        );
        // Print one cycle, Figure 13 style.
        if let Some(record) = report
            .tests
            .iter()
            .flat_map(|t| t.violations.iter())
            .find(|v| v.violation.is_some())
        {
            println!(
                "example violation (signature {}, observed {} times):",
                record.signature, record.occurrences
            );
            println!("  {}", record.violation.as_ref().expect("filtered above"));
        }
        println!();
    }
}
