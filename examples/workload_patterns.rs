//! Structured workloads: validate producer/consumer, hot-spot, and ring
//! sharing patterns — the communication shapes real parallel software uses —
//! and compare their interleaving diversity and signature footprints with
//! a uniform-random test of the same size.
//!
//! Run with: `cargo run --example workload_patterns --release`

use mtracecheck::isa::{IsaKind, Program};
use mtracecheck::testgen::{generate, patterns, TestConfig};
use mtracecheck::{Campaign, CampaignConfig};

fn validate(name: &str, program: &Program, campaign: &Campaign) {
    let report = campaign.run_test(program);
    println!(
        "{name:<20} {:>6} unique interleavings  {:>4} B signature  {:>5.1}% flush traffic  {}",
        report.unique_signatures,
        report.signature_bytes,
        100.0 * report.intrusiveness.normalized(),
        if report.is_clean() {
            "clean"
        } else {
            "VIOLATIONS"
        },
    );
    assert!(report.is_clean(), "correct hardware must validate clean");
}

fn main() {
    let iterations = 2048;
    let threads = 4;
    let ops = 40;
    println!("{threads} threads x {ops} ops, {iterations} iterations each\n");

    let campaign = Campaign::new(CampaignConfig::new(
        TestConfig::new(IsaKind::Arm, threads, ops, 8),
        iterations,
    ));
    validate(
        "uniform random",
        &generate(&TestConfig::new(IsaKind::Arm, threads, ops, 8).with_seed(7)),
        &campaign,
    );
    validate(
        "producer/consumer",
        &patterns::producer_consumer(threads, ops, 8, 7),
        &campaign,
    );
    validate("hot spot", &patterns::hotspot(threads, ops, 7), &campaign);
    validate("ring", &patterns::ring(threads, ops, 7), &campaign);

    println!(
        "\nhot-spot contention maximizes per-load candidate sets (largest signatures\n\
         and flush traffic); all structured patterns validate as cleanly as uniform\n\
         random tests."
    );
}
