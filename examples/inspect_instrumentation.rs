//! Inspect what MTraceCheck actually generates: the Figure 4-style
//! instrumented pseudo-assembly for a litmus test, and the Figure 2-style
//! constraint graph (as Graphviz DOT) of a violating observation.
//!
//! Run with: `cargo run --example inspect_instrumentation --release`

use mtracecheck::graph::{
    check_conventional, explain_violation, render_dot, CheckOptions, TestGraphSpec,
};
use mtracecheck::instr::{analyze, render_instrumented, SignatureSchema, SourcePruning};
use mtracecheck::isa::{litmus, IsaKind, Mcm, OpId, ReadsFrom, Tid, Value};

fn main() {
    // 1. The instrumented message-passing test, ARM flavour.
    let mp = litmus::message_passing();
    let analysis = analyze(&mp.program, &SourcePruning::none());
    let schema = SignatureSchema::build(&mp.program, &analysis, IsaKind::Arm.register_bits());
    println!("=== instrumented {} (ARM) ===", mp.name);
    println!(
        "{}",
        render_instrumented(&mp.program, &schema, IsaKind::Arm)
    );

    // 2. A violating CoRR observation and its cyclic constraint graph.
    let corr = litmus::corr();
    let spec = TestGraphSpec::new(&corr.program, Mcm::Tso);
    let mut rf = ReadsFrom::new();
    rf.record(OpId::new(Tid(1), 0), Value(1)); // first load sees the store
    rf.record(OpId::new(Tid(1), 1), Value::INIT); // second load reads older: violation
    let obs = spec.observe(&corr.program, &rf, &CheckOptions::default());
    let outcome = check_conventional(&spec, std::slice::from_ref(&obs));
    let violation = outcome.results[0]
        .as_ref()
        .expect_err("anti-coherent CoRR observation must be cyclic");
    println!("=== violating {} observation ===", corr.name);
    println!("observation: {rf}");
    print!(
        "{}",
        explain_violation(&corr.program, &spec, &rf, violation)
    );

    let dot = render_dot(&corr.program, &spec, &obs, Some(violation));
    let path = "corr_violation.dot";
    match std::fs::write(path, &dot) {
        Ok(()) => println!("\nconstraint graph written to {path} (render with `dot -Tsvg`)"),
        Err(e) => println!("\ncould not write {path}: {e}; DOT follows:\n{dot}"),
    }
}
