//! Quickstart: validate one constrained-random test configuration end to
//! end — generate, instrument, execute, collect signatures, and check the
//! unique interleavings collectively.
//!
//! Run with: `cargo run --example quickstart --release`

use mtracecheck::isa::IsaKind;
use mtracecheck::{Campaign, CampaignConfig, TestConfig};

fn main() {
    // The paper's ARM-2-50-32 configuration, scaled to 2 048 loop
    // iterations so the example finishes in seconds.
    let test = TestConfig::new(IsaKind::Arm, 2, 50, 32).with_seed(2017);
    println!("configuration: {}", test.name());

    let config = CampaignConfig::new(test, 2048)
        .with_tests(3)
        .with_conventional_comparison();
    let report = Campaign::new(config).run();

    println!("{report}");
    println!(
        "summary: {:.1} unique interleavings/test on average, {} failing tests",
        report.mean_unique_signatures(),
        report.failing_tests()
    );
    if report.failing_tests() == 0 {
        println!("the simulated platform abides by its memory consistency model");
    }
}
