//! Offline stub for `criterion`: runs each benchmark closure a few times
//! and reports rough wall-clock timings to stderr. Proves benches compile
//! and run; not a statistics engine. See devstubs/README.md.

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation (stub: ignored).
#[derive(Clone, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Benchmark identifier.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }
}

/// Per-iteration timing harness.
pub struct Bencher {
    runs: u32,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over a few runs.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.runs {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Stub benchmark group.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Sets the throughput annotation (stub: ignored).
    pub fn throughput(&mut self, _throughput: Throughput) {}

    /// Sets the sample count (stub: ignored).
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (stub: ignored).
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            runs: 3,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        eprintln!(
            "[stub criterion] {}/{}: {:?} per run over {} runs",
            self.name,
            id,
            bencher.elapsed / bencher.runs.max(1),
            bencher.runs
        );
    }

    /// Runs a benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = id.0.clone();
        self.run(&name, |b| f(b, input));
        self
    }

    /// Runs a benchmark without input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let name = id.into();
        self.run(&name, &mut f);
        self
    }

    /// Finishes the group (stub: no-op).
    pub fn finish(self) {}
}

/// Stub criterion driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Stub `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Stub `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
