//! Offline stub for `proptest`: each property runs a handful of
//! deterministic cases. A smoke test, not a property search.
//! See devstubs/README.md.

/// Deterministic case-sampling rng (splitmix64).
#[derive(Clone, Debug)]
pub struct StubRng(u64);

impl StubRng {
    /// Creates the sampler.
    pub fn new(seed: u64) -> Self {
        StubRng(seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    /// Next 64 sample bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Stub strategy: something that can produce sample values.
pub trait Strategy {
    /// The sampled value type.
    type Value;
    /// Draws one sample.
    fn sample(&self, rng: &mut StubRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StubRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StubRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StubRng) -> $t {
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_float_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StubRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// `any::<T>()` support.
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StubRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StubRng) -> $t { rng.next_u64() as $t }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StubRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StubRng) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StubRng) -> T {
        T::arbitrary(_rng)
    }
}

/// Arbitrary-value strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}

/// Test-runner configuration (stub: caps cases at 4 for speed).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Requested number of cases.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases (stub caps the actual count).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 4 }
    }
}

/// Strategy combinators.
pub mod strategy_mods {
    /// Sampling strategies.
    pub mod sample {
        use crate::{Strategy, StubRng};

        /// Strategy picking one element of a vector.
        pub struct Select<T>(Vec<T>);

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut StubRng) -> T {
                self.0[rng.next_u64() as usize % self.0.len()].clone()
            }
        }

        /// Picks uniformly from `options`.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select of empty vec");
            Select(options)
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, StubRng};

        /// Vec length specification (a fixed size or a range).
        pub struct SizeRange(usize, usize);

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange(n, n + 1)
            }
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(r: core::ops::Range<usize>) -> Self {
                SizeRange(r.start, r.end)
            }
        }

        /// Strategy generating vectors of samples.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut StubRng) -> Vec<S::Value> {
                let SizeRange(lo, hi) = self.size;
                assert!(lo < hi, "empty size range");
                let len = lo + (rng.next_u64() as usize) % (hi - lo);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// Vector strategy of `element` samples with `size` entries.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }
}

/// Everything tests import.
pub mod prelude {
    pub use crate::strategy_mods as prop;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Number of cases a property actually runs: the `PROPTEST_CASES`
/// environment variable wins outright (CI uses it to crank differential
/// suites to 1024 cases); otherwise the requested count is capped at 4 so
/// the default `cargo test` stays a fast smoke pass.
pub fn resolved_cases(requested: u32) -> u64 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => v.parse().unwrap_or(4),
        Err(_) => u64::from(requested.min(4)),
    }
}

/// Stub `proptest!` macro: runs each property over a few deterministic
/// samples.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut sampler = $crate::StubRng::new(0x5EED_0000 ^ 0u64);
                for case in 0..$crate::resolved_cases(($cfg).cases) {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut sampler);)*
                    let outcome: ::core::result::Result<(), ::std::string::String> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(message) = outcome {
                        panic!("stub proptest case {case} of {}: {message}",
                               stringify!($name));
                    }
                }
            }
        )*
    };
}

/// Stub `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Stub `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(
                ::std::format!("{:?} != {:?}", l, r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}
