//! Offline stub for `serde_json`: correct signatures, runtime errors.
//! See devstubs/README.md.

use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Stub JSON error.
pub struct Error(String);

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Error({})", self.0)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

fn stub<T>() -> Result<T, Error> {
    Err(Error("devstub serde_json: no real JSON support offline".into()))
}

/// Stub `to_string` (always errors).
pub fn to_string<T: ?Sized + Serialize>(_value: &T) -> Result<String, Error> {
    stub()
}

/// Stub `to_string_pretty` (always errors).
pub fn to_string_pretty<T: ?Sized + Serialize>(_value: &T) -> Result<String, Error> {
    stub()
}

/// Stub `to_writer` (always errors).
pub fn to_writer<W: std::io::Write, T: ?Sized + Serialize>(
    _writer: W,
    _value: &T,
) -> Result<(), Error> {
    stub()
}

/// Stub `from_str` (always errors).
pub fn from_str<'a, T: Deserialize<'a>>(_s: &'a str) -> Result<T, Error> {
    stub()
}

/// Stub `from_reader` (always errors).
pub fn from_reader<R: std::io::Read, T: DeserializeOwned>(_reader: R) -> Result<T, Error> {
    stub()
}
