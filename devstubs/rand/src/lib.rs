//! Offline stub for `rand` 0.8 — deterministic splitmix64 streams behind
//! the subset of the API this workspace uses. See devstubs/README.md.

/// Core random-number source.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (stub: only `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform sampling from range types.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_signed_range!(i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// Convenience sampling methods (stub subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generator implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Stub small generator (splitmix64).
    #[derive(Clone, Debug)]
    pub struct SmallRng(u64);

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.0)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng(state ^ 0xA076_1D64_78BD_642F)
        }
    }

    /// Stub standard generator (splitmix64, distinct stream constant).
    #[derive(Clone, Debug)]
    pub struct StdRng(u64);

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.0)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng(state ^ 0xE703_7ED1_A0B4_28DB)
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Stub subset of `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}
