//! Offline stub for `serde` — the trait skeleton only. Derived impls
//! typecheck but error at runtime. See devstubs/README.md.

pub use serde_derive::{Deserialize, Serialize};

/// Stub serialization trait.
pub trait Serialize {
    /// Serializes `self` (stub: always errors).
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Stub serializer trait.
pub trait Serializer: Sized {
    /// Success type.
    type Ok;
    /// Error type.
    type Error: ser::Error;
}

/// Stub deserialization trait.
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value (stub: always errors).
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Stub deserializer trait.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: de::Error;
}

macro_rules! impl_stub_serialize {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, _serializer: S) -> Result<S::Ok, S::Error> {
                Err(ser::Error::custom("devstub serde"))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(_deserializer: D) -> Result<Self, D::Error> {
                Err(de::Error::custom("devstub serde"))
            }
        }
    )*};
}
impl_stub_serialize!(
    bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, char, String
);

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, _serializer: S) -> Result<S::Ok, S::Error> {
        Err(ser::Error::custom("devstub serde"))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(_deserializer: D) -> Result<Self, D::Error> {
        Err(de::Error::custom("devstub serde"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, _serializer: S) -> Result<S::Ok, S::Error> {
        Err(ser::Error::custom("devstub serde"))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(_deserializer: D) -> Result<Self, D::Error> {
        Err(de::Error::custom("devstub serde"))
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, _serializer: S) -> Result<S::Ok, S::Error> {
        Err(ser::Error::custom("devstub serde"))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, _serializer: S) -> Result<S::Ok, S::Error> {
        Err(ser::Error::custom("devstub serde"))
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, _serializer: S) -> Result<S::Ok, S::Error> {
        Err(ser::Error::custom("devstub serde"))
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
    fn deserialize<D: Deserializer<'de>>(_deserializer: D) -> Result<Self, D::Error> {
        Err(de::Error::custom("devstub serde"))
    }
}

macro_rules! impl_stub_tuple {
    ($($name:ident),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, _serializer: S) -> Result<S::Ok, S::Error> {
                Err(ser::Error::custom("devstub serde"))
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: Deserializer<'de>>(_deserializer: D) -> Result<Self, D::Error> {
                Err(de::Error::custom("devstub serde"))
            }
        }
    };
}
impl_stub_tuple!(A);
impl_stub_tuple!(A, B);
impl_stub_tuple!(A, B, C);
impl_stub_tuple!(A, B, C, Z);

/// Serialization error plumbing.
pub mod ser {
    /// Error constructor used by generated impls.
    pub trait Error: Sized {
        /// Builds an error from a message.
        fn custom<T: core::fmt::Display>(msg: T) -> Self;
    }
}

/// Deserialization error plumbing.
pub mod de {
    /// Error constructor used by generated impls.
    pub trait Error: Sized {
        /// Builds an error from a message.
        fn custom<T: core::fmt::Display>(msg: T) -> Self;
    }

    /// Owned deserialization marker.
    pub trait DeserializeOwned: for<'de> crate::Deserialize<'de> {}
    impl<T: for<'de> crate::Deserialize<'de>> DeserializeOwned for T {}
}
