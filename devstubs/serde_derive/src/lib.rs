//! Offline stub for `serde_derive`: emits impls that typecheck and fail
//! at runtime. Handles non-generic structs and enums (all this workspace
//! derives serde on). See devstubs/README.md.

use proc_macro::{TokenStream, TokenTree};

fn type_name(input: TokenStream) -> String {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                match iter.next() {
                    Some(TokenTree::Ident(name)) => {
                        if let Some(TokenTree::Punct(p)) = iter.next() {
                            if p.as_char() == '<' {
                                panic!(
                                    "stub serde_derive: generic type `{name}` not supported; \
                                     extend devstubs/serde_derive"
                                );
                            }
                        }
                        return name.to_string();
                    }
                    other => panic!("stub serde_derive: expected type name, got {other:?}"),
                }
            }
        }
    }
    panic!("stub serde_derive: no struct/enum found in derive input");
}

/// Stub `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize<S: ::serde::Serializer>(&self, _s: S)\n\
                 -> ::core::result::Result<S::Ok, S::Error> {{\n\
                 ::core::result::Result::Err(\n\
                     <S::Error as ::serde::ser::Error>::custom(\"devstub serde\"))\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("stub serde_derive: generated impl parses")
}

/// Stub `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: ::serde::Deserializer<'de>>(_d: D)\n\
                 -> ::core::result::Result<Self, D::Error> {{\n\
                 ::core::result::Result::Err(\n\
                     <D::Error as ::serde::de::Error>::custom(\"devstub serde\"))\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("stub serde_derive: generated impl parses")
}
